"""Verdict fusion: the agreement matrix and its guardrails.

Two detectors, four cells:

====================  =====================  ==========================
cluster verdict        second opinion         agreement cell
====================  =====================  ==========================
benign                 benign                 ``agree_benign``
flagged                fraud-grade            ``agree_fraud``
flagged                benign                 ``cluster_only``
benign                 fraud-grade            ``second_opinion_only``
====================  =====================  ==========================

The second opinion is "fraud-grade" when its calibrated probability's
lift over the base rate clears a per-cell threshold: one bar to enter
the matrix at all (``second_opinion_lift``) and a separate, usually
higher bar for the second opinion to flag *alone*
(``second_only_lift`` — a cell where the cluster model actively
disagrees deserves more evidence).  The fused verdict is additive-only:
it never un-flags what the cluster arm flagged, so disabling fusion
restores cluster-only behaviour bit for bit.

:class:`FusionGuardrailConfig` mirrors the rollout subsystem's
``GuardrailConfig`` shape (ceilings + a minimum sample) so a bad
fusion model auto-disables the same way a bad candidate rolls back.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.fusion.model import SecondOpinion

__all__ = [
    "AgreementCell",
    "FusedVerdict",
    "FusionGuardrailConfig",
    "FusionPolicy",
    "FusionPolicyConfig",
]


class AgreementCell(str, Enum):
    """Where one session lands in the two-detector agreement matrix."""

    AGREE_BENIGN = "agree_benign"
    AGREE_FRAUD = "agree_fraud"
    CLUSTER_ONLY = "cluster_only"
    SECOND_ONLY = "second_opinion_only"


@dataclass(frozen=True)
class FusionPolicyConfig:
    """Per-cell decision thresholds.

    Parameters
    ----------
    second_opinion_lift:
        Calibrated-probability lift (vs the base seed rate) at which
        the second opinion counts as fraud-grade.
    second_only_lift:
        Higher bar for the ``second_opinion_only`` cell to escalate
        the fused verdict on its own.
    cluster_only_flags / second_only_flags:
        Whether the respective single-detector cells escalate the
        fused verdict (both default on; turning ``second_only_flags``
        off demotes fusion to a pure annotator).
    """

    second_opinion_lift: float = 2.0
    second_only_lift: float = 2.0
    cluster_only_flags: bool = True
    second_only_flags: bool = True

    def __post_init__(self) -> None:
        if self.second_opinion_lift <= 0:
            raise ValueError("second_opinion_lift must be positive")
        if self.second_only_lift < self.second_opinion_lift:
            raise ValueError(
                "second_only_lift must be >= second_opinion_lift "
                "(the lone-detector cell cannot have a lower bar)"
            )


@dataclass(frozen=True)
class FusionGuardrailConfig:
    """Limits the serving arm must stay inside, or it disables itself.

    Parameters
    ----------
    max_second_flag_rate:
        Ceiling on the share of verdicts where the second opinion is
        fraud-grade — a mis-calibrated model flooding the risk engine
        is exactly the failure this exists to stop.
    max_fused_flag_rate_delta:
        Ceiling on ``fused flag rate - cluster flag rate`` (how much
        extra traffic fusion escalates overall).
    max_mean_latency_ms:
        Ceiling on the mean per-session second-opinion latency.
    min_verdicts:
        Guardrails stay quiet until this many fused verdicts have
        accumulated (no verdicts, no verdict).
    """

    max_second_flag_rate: float = 0.05
    max_fused_flag_rate_delta: float = 0.05
    max_mean_latency_ms: float = 50.0
    min_verdicts: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_second_flag_rate <= 1.0:
            raise ValueError("max_second_flag_rate must lie in [0, 1]")
        if not 0.0 <= self.max_fused_flag_rate_delta <= 1.0:
            raise ValueError("max_fused_flag_rate_delta must lie in [0, 1]")
        if self.max_mean_latency_ms <= 0:
            raise ValueError("max_mean_latency_ms must be positive")
        if self.min_verdicts < 1:
            raise ValueError("min_verdicts must be >= 1")


@dataclass(frozen=True)
class FusedVerdict:
    """The fusion layer's answer for one session."""

    cluster_flagged: bool
    second_flagged: bool
    fused_flagged: bool
    cell: AgreementCell
    probability: float
    lift: float

    def to_dict(self) -> dict:
        return {
            "cluster_flagged": self.cluster_flagged,
            "second_flagged": self.second_flagged,
            "fused_flagged": self.fused_flagged,
            "cell": self.cell.value,
            "probability": round(self.probability, 8),
            "lift": round(self.lift, 4),
        }


class FusionPolicy:
    """Pure decision logic: (cluster verdict, second opinion) -> cell."""

    def __init__(self, config: Optional[FusionPolicyConfig] = None) -> None:
        self.config = config or FusionPolicyConfig()

    def decide(
        self, cluster_flagged: bool, opinion: SecondOpinion
    ) -> FusedVerdict:
        config = self.config
        second_flagged = opinion.lift >= config.second_opinion_lift
        if cluster_flagged and second_flagged:
            cell = AgreementCell.AGREE_FRAUD
            fused = True
        elif cluster_flagged:
            cell = AgreementCell.CLUSTER_ONLY
            fused = config.cluster_only_flags
        elif second_flagged:
            cell = AgreementCell.SECOND_ONLY
            fused = (
                config.second_only_flags
                and opinion.lift >= config.second_only_lift
            )
        else:
            cell = AgreementCell.AGREE_BENIGN
            fused = False
        # Additive-only: a flagged cluster verdict always survives.
        fused = fused or cluster_flagged
        return FusedVerdict(
            cluster_flagged=cluster_flagged,
            second_flagged=second_flagged,
            fused_flagged=fused,
            cell=cell,
            probability=opinion.probability,
            lift=opinion.lift,
        )
