"""Isotonic calibration (pool-adjacent-violators) in pure numpy.

Raw propagated scores are *orderings*, not probabilities: the graph
mixing deflates and compresses them in node-topology-dependent ways.
Isotonic regression against held-out outcomes maps the raw score onto
the best monotone estimate of ``P(seed-tag | score)``, which is what
the fusion policy thresholds on (as a lift over the base rate, so the
same policy config works across traffic mixes).

The calibrator must degrade gracefully at the edges the satellite
tests pin down: an empty tag set, a single-class tag column, and an
all-tagged population all produce a flat (but valid) curve instead of
an exception.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["IsotonicCalibrator", "pav_fit", "reliability_report"]


def pav_fit(values: np.ndarray) -> np.ndarray:
    """Pool-adjacent-violators over ``values`` (already x-sorted).

    Returns the non-decreasing fit minimizing squared error; classic
    stack-of-blocks PAV, O(n).
    """
    values = np.asarray(values, dtype=np.float64)
    blocks: List[List[float]] = []  # [mean, weight]
    for value in values:
        blocks.append([float(value), 1.0])
        while len(blocks) > 1 and blocks[-2][0] >= blocks[-1][0]:
            top = blocks.pop()
            beneath = blocks.pop()
            weight = beneath[1] + top[1]
            blocks.append(
                [(beneath[0] * beneath[1] + top[0] * top[1]) / weight, weight]
            )
    fitted = np.empty(len(values))
    position = 0
    for mean, weight in blocks:
        count = int(round(weight))
        fitted[position : position + count] = mean
        position += count
    return fitted


class IsotonicCalibrator:
    """Monotone map from raw scores to outcome probabilities."""

    def __init__(
        self, xs: Sequence[float], ys: Sequence[float], base_rate: float
    ) -> None:
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        self.base_rate = float(base_rate)
        if self.xs.shape != self.ys.shape:
            raise ValueError("calibration curve arrays are misaligned")

    @classmethod
    def fit(
        cls, raw: np.ndarray, outcomes: np.ndarray
    ) -> "IsotonicCalibrator":
        """Fit on held-out ``(raw score, binary outcome)`` pairs."""
        raw = np.asarray(raw, dtype=np.float64)
        outcomes = np.asarray(outcomes, dtype=np.float64)
        if raw.size == 0:
            return cls(xs=[0.0], ys=[0.0], base_rate=0.0)
        base = float(outcomes.mean())
        order = np.argsort(raw, kind="stable")
        fitted = pav_fit(outcomes[order])
        xs_sorted = raw[order]
        # Collapse duplicate x into one knot (np.interp needs a
        # function); PAV already gives equal fits within a tie block.
        xs, first_index = np.unique(xs_sorted, return_index=True)
        ys = fitted[first_index]
        return cls(xs=xs, ys=ys, base_rate=base)

    def transform(self, raw: np.ndarray) -> np.ndarray:
        """Calibrated probabilities for raw scores (clipped to [0, 1])."""
        raw = np.asarray(raw, dtype=np.float64)
        return np.clip(np.interp(raw, self.xs, self.ys), 0.0, 1.0)

    def transform_one(self, raw: float) -> float:
        return float(self.transform(np.asarray([raw]))[0])

    def to_dict(self) -> Dict:
        return {
            "xs": self.xs.tolist(),
            "ys": self.ys.tolist(),
            "base_rate": self.base_rate,
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "IsotonicCalibrator":
        return cls(
            xs=document["xs"],
            ys=document["ys"],
            base_rate=document["base_rate"],
        )


def reliability_report(
    probabilities: np.ndarray,
    outcomes: np.ndarray,
    n_bins: int = 10,
) -> Dict:
    """Reliability diagram + expected calibration error on a holdout.

    Bins are equal-width over the *observed* probability range (the
    scores concentrate near the base rate, so fixed [0,1] bins would
    put everything in bin zero).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    outcomes = np.asarray(outcomes, dtype=np.float64)
    if probabilities.size == 0:
        return {"bins": [], "ece": 0.0, "n": 0}
    low = float(probabilities.min())
    high = float(probabilities.max())
    if high <= low:
        high = low + 1e-12
    edges = np.linspace(low, high, n_bins + 1)
    assignment = np.clip(
        np.digitize(probabilities, edges[1:-1]), 0, n_bins - 1
    )
    bins: List[Dict] = []
    ece = 0.0
    total = probabilities.size
    for bin_index in range(n_bins):
        mask = assignment == bin_index
        count = int(mask.sum())
        if count == 0:
            continue
        predicted = float(probabilities[mask].mean())
        observed = float(outcomes[mask].mean())
        ece += (count / total) * abs(predicted - observed)
        bins.append(
            {
                "bin": bin_index,
                "n": count,
                "mean_predicted": round(predicted, 6),
                "observed_rate": round(observed, 6),
            }
        )
    return {"bins": bins, "ece": round(float(ece), 6), "n": int(total)}


def split_halves(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic interleaved fit/holdout split over ``n`` rows.

    Even rows seed the propagation, odd rows calibrate — a fixed,
    reproducible partition with both halves spanning the full traffic
    window (a time-based split would alias the release calendar).
    """
    fit_mask = np.zeros(n, dtype=bool)
    fit_mask[0::2] = True
    return fit_mask, ~fit_mask
