"""The trainable, persistable second-opinion model.

:class:`FusionModel` packages the whole second-opinion chain — node
graph, propagated scores, isotonic calibration — behind two calls:

* :meth:`FusionModel.train` builds it from a training window and the
  fitted cluster model (the node embeddings live in the *same* PCA
  space the cluster verdict uses, so both arms see one geometry);
* :meth:`FusionModel.second_opinion` scores one session at serve time:
  an exact node-key hit is a dict lookup (coarse fingerprints are
  low-cardinality, so steady-state traffic hits), a miss embeds the
  session and takes the nearest node's score.

Persistence mirrors ``repro.core.model_store``: one JSON document with
a sha256 content digest, plus a digest of the cluster model's
projection so a fusion model can never be served against a pipeline it
was not trained with (the projections would silently disagree).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from datetime import date
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.browsers.useragent import parse_user_agent
from repro.fusion.calibration import (
    IsotonicCalibrator,
    reliability_report,
    split_halves,
)
from repro.fusion.labels import WeakLabels, weak_labels
from repro.fusion.propagation import (
    NodeIndex,
    PropagationConfig,
    build_node_index,
    propagate,
    seed_scores,
    staleness_bucket,
)
from repro.fusion.staleness import staleness_days, staleness_for

__all__ = ["FusionModel", "SecondOpinion", "load_fusion_document"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SecondOpinion:
    """What the second-opinion arm says about one session."""

    raw: float  # propagated node score
    probability: float  # calibrated P(seed-tag)
    lift: float  # probability / base rate (0 when base is 0)
    matched_node: bool  # exact node-key hit vs nearest-neighbor
    staleness_days: float

    def to_dict(self) -> Dict:
        return {
            "raw": round(self.raw, 8),
            "probability": round(self.probability, 8),
            "lift": round(self.lift, 4),
            "matched_node": self.matched_node,
            "staleness_days": self.staleness_days,
        }


def _fingerprint_digest(values: Sequence[int]) -> str:
    """Stable digest of one coarse fingerprint (canonical int64 bytes)."""
    canonical = np.asarray(values, dtype=np.int64).tobytes()
    return hashlib.blake2b(canonical, digest_size=12).hexdigest()


def _pipeline_digest(cluster_model) -> str:
    """Digest of the projection the embeddings were computed in."""
    scaler = cluster_model.preprocessor.scaler
    hasher = hashlib.sha256()
    hasher.update(np.asarray(scaler.mean_, dtype=np.float64).tobytes())
    hasher.update(np.asarray(scaler.scale_, dtype=np.float64).tobytes())
    hasher.update(
        np.asarray(cluster_model.pca.components_, dtype=np.float64).tobytes()
    )
    hasher.update(
        np.asarray(cluster_model.pca.mean_, dtype=np.float64).tobytes()
    )
    return hasher.hexdigest()


def _content_digest(document: dict) -> str:
    payload = json.dumps(document, indent=2, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def load_fusion_document(path: Union[str, Path]) -> dict:
    """Read and digest-verify a saved fusion model document."""
    document = json.loads(Path(path).read_text())
    stored = document.pop("sha256", None)
    if stored is None or _content_digest(document) != stored:
        raise ValueError(f"fusion model {path} failed its content digest")
    document["sha256"] = stored
    return document


class FusionModel:
    """Second-opinion scorer: node graph + propagation + calibration."""

    def __init__(
        self,
        *,
        config: PropagationConfig,
        node_keys: Sequence[Tuple[str, int, int, int]],
        node_scores: np.ndarray,
        node_embeddings: np.ndarray,
        tag_scale_abs: float,
        calibrator: IsotonicCalibrator,
        reliability: Dict,
        iterations: int,
        converged: bool,
        trained_sessions: int,
        reference_day: date,
        pipeline_digest: str,
        cluster_model=None,
    ) -> None:
        self.config = config
        self.node_keys = [tuple(key) for key in node_keys]
        self.node_scores = np.asarray(node_scores, dtype=np.float64)
        self.node_embeddings = np.asarray(node_embeddings, dtype=np.float64)
        self.tag_scale_abs = float(tag_scale_abs)
        self.calibrator = calibrator
        self.reliability = reliability
        self.iterations = int(iterations)
        self.converged = bool(converged)
        self.trained_sessions = int(trained_sessions)
        self.reference_day = reference_day
        self.pipeline_digest = pipeline_digest
        self._node_of_key = {key: i for i, key in enumerate(self.node_keys)}
        # UA strings are low-cardinality on real traffic; parsing them
        # per request would dominate the second-opinion latency.
        self._ua_key_cache: Dict[str, str] = {}
        self._cluster_model = None
        if cluster_model is not None:
            self.bind(cluster_model)

    # ------------------------------------------------------------------
    # training

    @classmethod
    def train(
        cls,
        dataset,
        cluster_model,
        config: Optional[PropagationConfig] = None,
    ) -> "FusionModel":
        """Build the second opinion from a training window.

        The weak tags enter only through the sanctioned
        :func:`~repro.fusion.labels.weak_labels` accessor.  Even rows
        seed the propagation; odd rows are held out to fit and check
        the calibration, so the reliability report is honest.
        """
        config = config or PropagationConfig()
        labels: WeakLabels = weak_labels(dataset)
        matrix = dataset.matrix()
        projected = cluster_model.pca.transform(
            cluster_model.preprocessor.transform(matrix)
        )
        staleness = staleness_days(dataset.ua_keys, dataset.days)
        digests = [
            _fingerprint_digest(dataset.features[row])
            for row in range(len(dataset))
        ]
        index: NodeIndex = build_node_index(
            digests,
            projected,
            labels.untrusted_ip,
            labels.untrusted_cookie,
            staleness,
            config,
        )
        fit_mask, holdout_mask = split_halves(len(dataset))
        seeds, _ = seed_scores(index, labels.ato, config, member_mask=fit_mask)
        result = propagate(index.embeddings, seeds, config)

        raw_holdout = result.node_scores[index.node_of[holdout_mask]]
        outcomes_holdout = labels.ato[holdout_mask]
        calibrator = IsotonicCalibrator.fit(raw_holdout, outcomes_holdout)
        reliability = reliability_report(
            calibrator.transform(raw_holdout), outcomes_holdout
        )
        reference_day = (
            dataset.days.astype("datetime64[D]").max().astype(object)
            if len(dataset)
            else date(1970, 1, 1)
        )
        return cls(
            config=config,
            node_keys=index.keys,
            node_scores=result.node_scores,
            node_embeddings=index.embeddings,
            tag_scale_abs=index.tag_scale_abs,
            calibrator=calibrator,
            reliability=reliability,
            iterations=result.iterations,
            converged=result.converged,
            trained_sessions=len(dataset),
            reference_day=reference_day,
            pipeline_digest=_pipeline_digest(cluster_model),
            cluster_model=cluster_model,
        )

    # ------------------------------------------------------------------
    # binding to the cluster model's projection

    def bind(self, cluster_model) -> "FusionModel":
        """Attach the projection used for node-key-miss embedding."""
        if _pipeline_digest(cluster_model) != self.pipeline_digest:
            raise ValueError(
                "fusion model was trained against a different cluster "
                "model projection; retrain with `fuse train`"
            )
        self._cluster_model = cluster_model
        return self

    @property
    def n_nodes(self) -> int:
        return len(self.node_keys)

    @property
    def base_rate(self) -> float:
        return self.calibrator.base_rate

    # ------------------------------------------------------------------
    # scoring

    def second_opinion(
        self,
        values: Sequence[int],
        user_agent: str,
        day: Optional[date] = None,
        untrusted_ip: bool = False,
        untrusted_cookie: bool = False,
    ) -> SecondOpinion:
        """Score one session from its claimed surface + weak signals.

        The session's own ``ato`` tag is *not* an input: it is the
        training target, and consuming it at scoring time would be
        label leakage.  Missing tags degrade to ``False`` (trusted),
        which only ever lowers the score — the conservative direction.
        """
        if day is None:
            day = self.reference_day
        ua_key = self._ua_key_cache.get(user_agent)
        if ua_key is None:
            try:
                ua_key = parse_user_agent(user_agent).key()
            except (ValueError, KeyError):
                ua_key = ""
            if len(self._ua_key_cache) < 65536:
                self._ua_key_cache[user_agent] = ua_key
        staleness = staleness_for(ua_key, day) if ua_key else 0.0
        bucket = int(
            staleness_bucket(np.asarray([staleness]), self.config)[0]
        )
        key = (
            _fingerprint_digest(values),
            int(bool(untrusted_ip)),
            int(bool(untrusted_cookie)),
            bucket,
        )
        node = self._node_of_key.get(key)
        matched = node is not None
        if not matched:
            node = self._nearest_node(
                values, untrusted_ip, untrusted_cookie, bucket
            )
        raw = float(self.node_scores[node])
        probability = self.calibrator.transform_one(raw)
        lift = probability / self.base_rate if self.base_rate > 0 else 0.0
        return SecondOpinion(
            raw=raw,
            probability=probability,
            lift=lift,
            matched_node=matched,
            staleness_days=staleness,
        )

    def _nearest_node(
        self,
        values: Sequence[int],
        untrusted_ip: bool,
        untrusted_cookie: bool,
        bucket: int,
    ) -> int:
        if self._cluster_model is None:
            raise RuntimeError(
                "fusion model is not bound to a cluster model; call bind()"
            )
        matrix = np.asarray([values], dtype=np.float64)
        projection = self._cluster_model.pca.transform(
            self._cluster_model.preprocessor.transform(matrix)
        )[0]
        normalized_bucket = bucket / float(
            max(self.config.max_staleness_buckets, 1)
        )
        embedding = np.concatenate(
            [
                projection,
                np.asarray(
                    [
                        float(bool(untrusted_ip)),
                        float(bool(untrusted_cookie)),
                        normalized_bucket,
                    ]
                )
                * self.tag_scale_abs,
            ]
        )
        deltas = self.node_embeddings - embedding[None, :]
        return int(np.argmin(np.einsum("ij,ij->i", deltas, deltas)))

    def score_dataset(self, dataset, labels: Optional[WeakLabels] = None) -> Dict:
        """Vectorized second opinions over a dataset's rows.

        ``labels`` supplies the infrastructure tags (via the sanctioned
        accessor); omitted, all sessions score as trusted.  Returns
        columns ``raw`` / ``probability`` / ``lift`` / ``matched``.
        """
        n = len(dataset)
        if labels is None:
            ip = np.zeros(n, dtype=bool)
            cookie = np.zeros(n, dtype=bool)
        else:
            ip = labels.untrusted_ip
            cookie = labels.untrusted_cookie
        staleness = staleness_days(dataset.ua_keys, dataset.days)
        buckets = staleness_bucket(staleness, self.config)
        raw = np.empty(n, dtype=np.float64)
        matched = np.zeros(n, dtype=bool)
        misses = []
        for row in range(n):
            key = (
                _fingerprint_digest(dataset.features[row]),
                int(ip[row]),
                int(cookie[row]),
                int(buckets[row]),
            )
            node = self._node_of_key.get(key)
            if node is None:
                misses.append(row)
                continue
            matched[row] = True
            raw[row] = self.node_scores[node]
        for row in misses:
            node = self._nearest_node(
                dataset.features[row], bool(ip[row]), bool(cookie[row]),
                int(buckets[row]),
            )
            raw[row] = self.node_scores[node]
        probability = self.calibrator.transform(raw)
        if self.base_rate > 0:
            lift = probability / self.base_rate
        else:
            lift = np.zeros_like(probability)
        return {
            "raw": raw,
            "probability": probability,
            "lift": lift,
            "matched": matched,
        }

    # ------------------------------------------------------------------
    # persistence

    def status_dict(self) -> Dict:
        """Summary for ``fuse status`` and ``/metrics`` neighbors."""
        return {
            "nodes": self.n_nodes,
            "trained_sessions": self.trained_sessions,
            "iterations": self.iterations,
            "converged": self.converged,
            "base_rate": round(self.base_rate, 6),
            "reliability_ece": self.reliability.get("ece", 0.0),
            "reference_day": self.reference_day.isoformat(),
            "pipeline_digest": self.pipeline_digest[:12],
        }

    def save(self, path: Union[str, Path]) -> str:
        """Serialize to JSON; returns the recorded sha256 digest."""
        document = {
            "format_version": _FORMAT_VERSION,
            "config": asdict(self.config),
            "node_keys": [list(key) for key in self.node_keys],
            "node_scores": self.node_scores.tolist(),
            "node_embeddings": self.node_embeddings.tolist(),
            "tag_scale_abs": self.tag_scale_abs,
            "calibrator": self.calibrator.to_dict(),
            "reliability": self.reliability,
            "iterations": self.iterations,
            "converged": self.converged,
            "trained_sessions": self.trained_sessions,
            "reference_day": self.reference_day.isoformat(),
            "pipeline_digest": self.pipeline_digest,
        }
        document["sha256"] = _content_digest(document)
        Path(path).write_text(json.dumps(document, indent=2) + "\n")
        return document["sha256"]

    @classmethod
    def load(
        cls, path: Union[str, Path], cluster_model=None
    ) -> "FusionModel":
        """Load a saved model; verifies digests before serving it."""
        document = load_fusion_document(path)
        if document.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported fusion model format "
                f"{document.get('format_version')!r}"
            )
        return cls(
            config=PropagationConfig(**document["config"]),
            node_keys=[tuple(key) for key in document["node_keys"]],
            node_scores=np.asarray(document["node_scores"]),
            node_embeddings=np.asarray(document["node_embeddings"]),
            tag_scale_abs=document["tag_scale_abs"],
            calibrator=IsotonicCalibrator.from_dict(document["calibrator"]),
            reliability=document["reliability"],
            iterations=document["iterations"],
            converged=document["converged"],
            trained_sessions=document["trained_sessions"],
            reference_day=date.fromisoformat(document["reference_day"]),
            pipeline_digest=document["pipeline_digest"],
            cluster_model=cluster_model,
        )
