"""Claimed-release staleness: the behavioural feature fraud can't hide.

Every fraud category in the traffic model claims a *victim* user-agent
sampled from the popularity mix ~90 days before the session (stolen
profiles age between theft and replay).  A genuine user on the same
release mostly shows up while that release is still current.  The days
between the session date and the claimed release's ship date therefore
separate replayed stolen state from organic laggards — including for
Category-4 browsers whose fingerprint is bit-identical to a victim's.

This is a *claimed-UA* property: it derives from the session date and
the user-agent string the client sent, both of which the backend
already has.  It reads nothing from the weak-tag columns.
"""

from __future__ import annotations

from datetime import date
from functools import lru_cache
from typing import Dict, Iterable, Optional

import numpy as np

from repro.browsers.releases import default_calendar
from repro.browsers.useragent import parse_ua_key

__all__ = ["release_date_for", "staleness_days", "staleness_for"]


@lru_cache(maxsize=4096)
def release_date_for(ua_key: str) -> Optional[date]:
    """Ship date of the claimed release, or ``None`` if out of scope.

    Cached: the coarse UA-key space is tiny (tens of releases), and the
    serving path asks once per request.
    """
    calendar = default_calendar()
    try:
        parsed = parse_ua_key(ua_key)
    except (ValueError, KeyError):
        return None
    if not calendar.has_release(parsed.vendor, parsed.version):
        return None
    return calendar.release(parsed.vendor, parsed.version).released


def staleness_for(ua_key: str, day: Optional[date]) -> float:
    """Days between ``day`` and the claimed release's ship date.

    Unknown user-agents and missing dates degrade to ``0.0`` (treated
    as fresh) — the second opinion then leans on the remaining
    dimensions instead of guessing.
    """
    if day is None:
        return 0.0
    released = release_date_for(ua_key)
    if released is None:
        return 0.0
    return float(max((day - released).days, 0))


def staleness_days(ua_keys: Iterable[str], days: np.ndarray) -> np.ndarray:
    """Vectorized :func:`staleness_for` over dataset columns."""
    dates = np.asarray(days).astype("datetime64[D]").astype(object)
    cache: Dict[str, Optional[date]] = {}
    out = np.zeros(len(dates), dtype=np.float64)
    for idx, key in enumerate(ua_keys):
        key = str(key)
        if key not in cache:
            cache[key] = release_date_for(key)
        released = cache[key]
        if released is not None:
            out[idx] = float(max((dates[idx] - released).days, 0))
    return out
