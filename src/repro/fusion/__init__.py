"""Second-opinion detector + calibrated verdict fusion.

The cluster-distance verdict is blind where the paper admits weakness:
Category-4 fraud browsers run a *legitimate* engine with a spoofed
environment, so their fingerprint lands in the right cluster and
cluster-mismatch never fires.  This package adds a second, independent
scoring family built from the weak behavioural tags FinOrg's risk
engine already records (``untrusted_ip`` / ``untrusted_cookie`` /
``ato``, Table 4) and fuses it with the cluster verdict:

* :mod:`repro.fusion.labels` — the *only* sanctioned reader of the
  weak-tag columns (models must never touch them as features);
* :mod:`repro.fusion.propagation` — semi-supervised label spreading of
  the sparse ``ato`` seeds across fingerprint-space neighborhoods;
* :mod:`repro.fusion.calibration` — pure-numpy isotonic (PAV)
  calibration of raw propagated scores into probabilities, with a
  held-out reliability check;
* :mod:`repro.fusion.model` — the trainable/persistable
  :class:`FusionModel` producing a :class:`SecondOpinion` per session;
* :mod:`repro.fusion.policy` — the agreement matrix combining both
  arms, with guardrails that auto-disable a misbehaving fusion model;
* :mod:`repro.fusion.arm` — the serving-side wrapper with counters,
  guardrail evaluation, and ``polygraph_fusion_*`` metrics.
"""

from repro.fusion.arm import FusionArm
from repro.fusion.calibration import IsotonicCalibrator, reliability_report
from repro.fusion.labels import WEAK_TAG_COLUMNS, WeakLabels, weak_labels
from repro.fusion.model import FusionModel, SecondOpinion
from repro.fusion.policy import (
    AgreementCell,
    FusedVerdict,
    FusionGuardrailConfig,
    FusionPolicy,
    FusionPolicyConfig,
)
from repro.fusion.propagation import PropagationConfig, PropagationResult

__all__ = [
    "AgreementCell",
    "FusedVerdict",
    "FusionArm",
    "FusionGuardrailConfig",
    "FusionModel",
    "FusionPolicy",
    "FusionPolicyConfig",
    "IsotonicCalibrator",
    "PropagationConfig",
    "PropagationResult",
    "SecondOpinion",
    "WEAK_TAG_COLUMNS",
    "WeakLabels",
    "weak_labels",
    "reliability_report",
]
