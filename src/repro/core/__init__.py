"""Browser Polygraph core: the paper's primary contribution.

The pipeline (Sections 6.4-6.6):

* :mod:`repro.core.config` — hyper-parameters (28 features, 7 PCA
  components, k=11, Isolation Forest threshold, risk constants);
* :mod:`repro.core.feature_selection` — the 513-candidate to 28-feature
  reduction of Section 6.3;
* :mod:`repro.core.preprocessing` — scaling + outlier removal;
* :mod:`repro.core.clustering` — PCA + KMeans + the cluster-to-user-agent
  table (paper Table 3), including rare-UA alignment;
* :mod:`repro.core.risk` — Algorithm 1 (the risk factor);
* :mod:`repro.core.detection` — online flagging of sessions;
* :mod:`repro.core.drift` — per-release drift checks and the retraining
  signal;
* :mod:`repro.core.pipeline` — the :class:`BrowserPolygraph` facade;
* :mod:`repro.core.model_store` — JSON persistence of trained models.
"""

from repro.core.clustering import ClusterModel
from repro.core.config import PipelineConfig
from repro.core.detection import DetectionReport, DetectionResult, FraudDetector
from repro.core.drift import DriftDetector, DriftRecord
from repro.core.explain import DetectionExplanation, explain_detection
from repro.core.pipeline import BrowserPolygraph
from repro.core.preprocessing import Preprocessor
from repro.core.retraining import ModelRegistry, RetrainingOrchestrator
from repro.core.risk import risk_factor, user_agent_distance
from repro.core.sampling import stratified_sample, stratum_counts

__all__ = [
    "BrowserPolygraph",
    "ClusterModel",
    "DetectionReport",
    "DetectionResult",
    "DetectionExplanation",
    "DriftDetector",
    "DriftRecord",
    "FraudDetector",
    "ModelRegistry",
    "PipelineConfig",
    "Preprocessor",
    "RetrainingOrchestrator",
    "explain_detection",
    "risk_factor",
    "stratified_sample",
    "stratum_counts",
    "user_agent_distance",
]
