"""Detection explanations: *why* was this session flagged?

A flagged session tells the risk engine "the fingerprint doesn't match
the claimed browser" — but a fraud analyst triaging the queue wants to
know *which* parts of the surface diverge and what browser the
fingerprint actually resembles.  :func:`explain_detection` produces
that: a feature-level diff against the claimed release's reference
fingerprint, ranked by standardized divergence, plus the closest
matching legitimate release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.browsers.useragent import UserAgentError, parse_ua_key
from repro.core.clustering import ClusterModel
from repro.fingerprint.features import FeatureSpec

__all__ = ["DetectionExplanation", "FeatureDivergence", "explain_detection"]


@dataclass(frozen=True)
class FeatureDivergence:
    """One feature's deviation from the claimed release's reference."""

    feature: str
    observed: int
    expected: int
    z_score: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.feature}: observed {self.observed}, "
            f"expected {self.expected} ({self.z_score:+.1f} sd)"
        )


@dataclass
class DetectionExplanation:
    """Analyst-facing explanation of one verdict."""

    claimed_ua: str
    predicted_cluster: int
    expected_cluster: Optional[int]
    divergences: List[FeatureDivergence]
    closest_release: Optional[str]
    closest_distance: float

    @property
    def matches_claim(self) -> bool:
        """Whether the fingerprint is consistent with the claimed UA."""
        return (
            self.expected_cluster is not None
            and self.predicted_cluster == self.expected_cluster
        )

    def summary(self, top: int = 3) -> str:
        """One-paragraph analyst summary."""
        if self.matches_claim:
            return f"fingerprint is consistent with {self.claimed_ua}"
        head = (
            f"fingerprint contradicts {self.claimed_ua}: "
            f"landed in cluster {self.predicted_cluster}"
        )
        if self.expected_cluster is not None:
            head += f" (expected {self.expected_cluster})"
        if self.closest_release:
            head += f"; surface most resembles {self.closest_release}"
        leads = "; ".join(str(d) for d in self.divergences[:top])
        return f"{head}. Top divergences: {leads}" if leads else head


def explain_detection(
    model: ClusterModel,
    features: Sequence[int],
    claimed_ua_key: str,
    top_n: int = 8,
) -> DetectionExplanation:
    """Explain one session's verdict against a fitted cluster model.

    ``features`` is the raw 28-value vector; ``claimed_ua_key`` the
    session's ``vendor-version`` label.
    """
    if model.kmeans is None:
        raise ValueError("explain_detection requires a fitted ClusterModel")
    vector = np.asarray(features, dtype=float)
    scaler = model.preprocessor.scaler
    predicted = model.predict_cluster(vector)
    expected = model.expected_cluster(claimed_ua_key)

    divergences: List[FeatureDivergence] = []
    reference = model.reference_vector(claimed_ua_key)
    if reference is not None:
        diffs = vector - reference.astype(float)
        z_scores = diffs / scaler.scale_
        order = np.argsort(-np.abs(z_scores))
        for idx in order[:top_n]:
            if diffs[idx] == 0:
                continue
            divergences.append(
                FeatureDivergence(
                    feature=model.specs[idx].name,
                    observed=int(vector[idx]),
                    expected=int(reference[idx]),
                    z_score=float(z_scores[idx]),
                )
            )

    closest, closest_distance = _closest_release(
        model, vector, prefer=claimed_ua_key
    )
    return DetectionExplanation(
        claimed_ua=claimed_ua_key,
        predicted_cluster=predicted,
        expected_cluster=expected,
        divergences=divergences,
        closest_release=closest,
        closest_distance=closest_distance,
    )


def _closest_release(
    model: ClusterModel, vector: np.ndarray, prefer: Optional[str] = None
) -> tuple:
    """The legitimate release whose reference fingerprint is nearest.

    Same-era releases share identical references; ties break toward
    ``prefer`` (the claimed user-agent) so a consistent session reports
    itself rather than an era sibling.
    """
    scaler = model.preprocessor.scaler
    scaled = (vector - scaler.mean_) / scaler.scale_
    ordered = sorted(model.ua_to_cluster, key=lambda k: (k != prefer, k))
    best_key: Optional[str] = None
    best_distance = float("inf")
    for ua_key in ordered:
        try:
            parse_ua_key(ua_key)
        except UserAgentError:  # pragma: no cover - table only holds keys
            continue
        reference = model.reference_vector(ua_key)
        if reference is None:
            continue
        ref_scaled = (reference.astype(float) - scaler.mean_) / scaler.scale_
        distance = float(np.linalg.norm(scaled - ref_scaled))
        if distance < best_distance:
            best_distance = distance
            best_key = ua_key
    return best_key, best_distance
