"""Automated retraining orchestration (closing the Section 6.6 loop).

The paper's drift detector *signals* retraining; someone still has to
do it: assemble the new training window, refit, verify the refreshed
model actually absorbs the drifted releases, and keep the previous
model around in case the new one regresses.  :class:`RetrainingOrchestrator`
automates that operational loop:

* maintains a sliding training window (the paper trained on 4.5 months);
* on each scheduled check, evaluates drift and — when triggered —
  retrains on the extended window;
* verifies the candidate model before promotion: training accuracy must
  stay above a floor and the drifted releases must now sit in the
  cluster table;
* archives every promoted model with metadata (a one-file model
  registry), so a bad promotion can be rolled back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import List, Optional, Union

from repro.core.pipeline import BrowserPolygraph
from repro.traffic.dataset import Dataset

__all__ = ["ModelRegistry", "RetrainingOrchestrator", "RetrainingOutcome"]


@dataclass(frozen=True)
class RetrainingOutcome:
    """What one scheduled check did."""

    check_date: date
    drift_detected: bool
    retrained: bool
    promoted: bool
    accuracy: Optional[float]
    detail: str


class ModelRegistry:
    """Versioned storage of promoted models.

    Each promotion writes ``model-v<N>.json`` plus an entry in
    ``registry.json`` recording when and why.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / "registry.json"

    def _index(self) -> List[dict]:
        if not self._index_path.exists():
            return []
        return json.loads(self._index_path.read_text())

    def versions(self) -> List[dict]:
        """Promotion history, oldest first."""
        return self._index()

    @property
    def latest_version(self) -> int:
        """Highest promoted version number (0 when empty)."""
        index = self._index()
        return index[-1]["version"] if index else 0

    def promote(
        self, polygraph: BrowserPolygraph, check_date: date, reason: str
    ) -> int:
        """Store a model as the next version; returns its number."""
        version = self.latest_version + 1
        model_path = self.root / f"model-v{version:03d}.json"
        polygraph.save(model_path)
        index = self._index()
        index.append(
            {
                "version": version,
                "path": model_path.name,
                "promoted_on": check_date.isoformat(),
                "accuracy": polygraph.accuracy,
                "reason": reason,
            }
        )
        self._index_path.write_text(json.dumps(index, indent=2))
        return version

    def load(self, version: Optional[int] = None) -> BrowserPolygraph:
        """Load a promoted model (latest by default)."""
        index = self._index()
        if not index:
            raise LookupError("the registry is empty")
        if version is None:
            entry = index[-1]
        else:
            matches = [e for e in index if e["version"] == version]
            if not matches:
                raise LookupError(f"no model version {version}")
            entry = matches[0]
        return BrowserPolygraph.load(self.root / entry["path"])


class RetrainingOrchestrator:
    """Drift-triggered retraining with verified promotion."""

    def __init__(
        self,
        registry: ModelRegistry,
        accuracy_floor: float = 0.985,
        max_window_sessions: Optional[int] = None,
    ) -> None:
        if not 0.0 < accuracy_floor < 1.0:
            raise ValueError("accuracy_floor must lie in (0, 1)")
        self.registry = registry
        self.accuracy_floor = accuracy_floor
        self.max_window_sessions = max_window_sessions
        self.window: Optional[Dataset] = None
        self.current: Optional[BrowserPolygraph] = None
        self.history: List[RetrainingOutcome] = []

    # ------------------------------------------------------------------

    def bootstrap(self, training: Dataset, on: date) -> BrowserPolygraph:
        """Initial training and promotion (version 1)."""
        self.window = training
        polygraph = BrowserPolygraph().fit(training)
        if polygraph.accuracy < self.accuracy_floor:
            raise RuntimeError(
                f"bootstrap accuracy {polygraph.accuracy:.4f} below the "
                f"{self.accuracy_floor:.4f} floor"
            )
        self.registry.promote(polygraph, on, "bootstrap")
        self.current = polygraph
        return polygraph

    def scheduled_check(self, live: Dataset, on: date) -> RetrainingOutcome:
        """One Section 6.6 check: evaluate drift, retrain if triggered."""
        if self.current is None or self.window is None:
            raise RuntimeError("orchestrator not bootstrapped")

        records = self.current.drift_report(live)
        drifted = [
            r.ua_key
            for r in records
            if r.retrain_needed(self.current.config.drift_accuracy_threshold)
        ]
        if not drifted:
            outcome = RetrainingOutcome(
                check_date=on,
                drift_detected=False,
                retrained=False,
                promoted=False,
                accuracy=self.current.accuracy,
                detail="no drift; model unchanged",
            )
            self.history.append(outcome)
            return outcome

        extended = self._extend_window(live)
        candidate = BrowserPolygraph().fit(extended)
        promoted, detail = self._verify_candidate(candidate, live, drifted)
        if promoted:
            self.registry.promote(
                candidate, on, f"drift in {', '.join(sorted(drifted))}"
            )
            self.current = candidate
            self.window = extended
        outcome = RetrainingOutcome(
            check_date=on,
            drift_detected=True,
            retrained=True,
            promoted=promoted,
            accuracy=candidate.accuracy,
            detail=detail,
        )
        self.history.append(outcome)
        return outcome

    # ------------------------------------------------------------------

    def _extend_window(self, live: Dataset) -> Dataset:
        extended = Dataset.concatenate([self.window, live])
        if (
            self.max_window_sessions is not None
            and len(extended) > self.max_window_sessions
        ):
            # Slide the window: keep the newest sessions.
            import numpy as np

            keep = np.arange(
                len(extended) - self.max_window_sessions, len(extended)
            )
            extended = extended.subset(keep)
        return extended

    def _verify_candidate(
        self,
        candidate: BrowserPolygraph,
        live: Dataset,
        drifted: List[str],
    ) -> tuple:
        if candidate.accuracy < self.accuracy_floor:
            return False, (
                f"candidate accuracy {candidate.accuracy:.4f} below floor; "
                "keeping the previous model"
            )
        missing = [
            key
            for key in drifted
            if candidate.cluster_model.expected_cluster(key) is None
        ]
        if missing:
            return False, (
                f"candidate did not absorb {', '.join(missing)}; "
                "keeping the previous model"
            )
        still_drifting = candidate.drift_report(live)
        if candidate.retrain_needed(still_drifting):
            return False, "candidate still reports drift; keeping previous model"
        return True, f"promoted after absorbing {', '.join(sorted(drifted))}"
