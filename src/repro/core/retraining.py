"""Automated retraining orchestration (closing the Section 6.6 loop).

The paper's drift detector *signals* retraining; someone still has to
do it: assemble the new training window, refit, verify the refreshed
model actually absorbs the drifted releases, and keep the previous
model around in case the new one regresses.  :class:`RetrainingOrchestrator`
automates that operational loop:

* maintains a sliding training window (the paper trained on 4.5 months);
* on each scheduled check, evaluates drift and — when triggered —
  retrains on the extended window;
* verifies the candidate model before promotion: training accuracy must
  stay above a floor and the drifted releases must now sit in the
  cluster table;
* archives every promoted model with metadata (a one-file model
  registry), so a bad promotion can be rolled back.

With a rollout manager attached (``repro.rollout``), verification no
longer promotes directly: the candidate is *staged* in the registry and
handed to the manager, which walks it through shadow and canary before
it becomes live — or rolls it back without the orchestrator's window
ever adopting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from typing import List, Optional, Union

from repro.core.model_store import stored_digest
from repro.core.pipeline import BrowserPolygraph
from repro.traffic.dataset import Dataset

__all__ = ["ModelRegistry", "RetrainingOrchestrator", "RetrainingOutcome"]

# Registry entry statuses.  Entries written before statuses existed are
# treated as live (they were promoted directly).
STATUS_LIVE = "live"
STATUS_CANDIDATE = "candidate"
STATUS_ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class RetrainingOutcome:
    """What one scheduled check did."""

    check_date: date
    drift_detected: bool
    retrained: bool
    promoted: bool
    accuracy: Optional[float]
    detail: str
    staged_version: Optional[int] = None


class ModelRegistry:
    """Versioned storage of promoted and staged models.

    Each entry writes ``model-v<N>.json`` plus a row in
    ``registry.json`` recording when, why, the model's sha256 content
    digest, and its status: ``live`` (serving, or a past serving
    model), ``candidate`` (staged for rollout), or ``rolled_back``.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path = self.root / "registry.json"

    def _index(self) -> List[dict]:
        if not self._index_path.exists():
            return []
        return json.loads(self._index_path.read_text())

    def _write_index(self, index: List[dict]) -> None:
        self._index_path.write_text(json.dumps(index, indent=2))

    def versions(self) -> List[dict]:
        """Promotion history, oldest first."""
        return self._index()

    @property
    def latest_version(self) -> int:
        """Highest stored version number (0 when empty)."""
        index = self._index()
        return index[-1]["version"] if index else 0

    @property
    def live_version(self) -> int:
        """Version of the newest live entry (0 when none)."""
        for entry in reversed(self._index()):
            if entry.get("status", STATUS_LIVE) == STATUS_LIVE:
                return entry["version"]
        return 0

    def _store(
        self,
        polygraph: BrowserPolygraph,
        check_date: date,
        reason: str,
        status: str,
    ) -> int:
        version = self.latest_version + 1
        model_path = self.root / f"model-v{version:03d}.json"
        digest = polygraph.save(model_path)
        index = self._index()
        index.append(
            {
                "version": version,
                "path": model_path.name,
                "promoted_on": check_date.isoformat(),
                "accuracy": polygraph.accuracy,
                "reason": reason,
                "status": status,
                "sha256": digest,
            }
        )
        self._write_index(index)
        return version

    def promote(
        self, polygraph: BrowserPolygraph, check_date: date, reason: str
    ) -> int:
        """Store a model directly as the next live version."""
        return self._store(polygraph, check_date, reason, STATUS_LIVE)

    def stage_candidate(
        self, polygraph: BrowserPolygraph, check_date: date, reason: str
    ) -> int:
        """Store a model as a rollout candidate (not yet serving)."""
        return self._store(polygraph, check_date, reason, STATUS_CANDIDATE)

    def _set_status(self, version: int, status: str) -> None:
        index = self._index()
        for entry in index:
            if entry["version"] == version:
                entry["status"] = status
                self._write_index(index)
                return
        raise LookupError(f"no model version {version}")

    def mark_live(self, version: int) -> None:
        """Mark a staged candidate as the serving model."""
        self._set_status(version, STATUS_LIVE)

    def mark_rolled_back(self, version: int) -> None:
        """Mark a version as rolled back (never load it by default)."""
        self._set_status(version, STATUS_ROLLED_BACK)

    def rollback(self) -> int:
        """Demote the newest live entry; return the prior live version."""
        index = self._index()
        live = [
            e for e in index if e.get("status", STATUS_LIVE) == STATUS_LIVE
        ]
        if len(live) < 2:
            raise LookupError("no prior live version to roll back to")
        self._set_status(live[-1]["version"], STATUS_ROLLED_BACK)
        return live[-2]["version"]

    def load(self, version: Optional[int] = None) -> BrowserPolygraph:
        """Load a model: the newest *live* entry by default.

        The entry's recorded sha256 is checked against the model file's
        before parsing, so a swapped or stale file on disk cannot serve
        under another version's name (the file's own content digest is
        verified separately on load).
        """
        index = self._index()
        if not index:
            raise LookupError("the registry is empty")
        if version is None:
            live = [
                e for e in index if e.get("status", STATUS_LIVE) == STATUS_LIVE
            ]
            if not live:
                raise LookupError("the registry has no live model")
            entry = live[-1]
        else:
            matches = [e for e in index if e["version"] == version]
            if not matches:
                raise LookupError(f"no model version {version}")
            entry = matches[0]
        path = self.root / entry["path"]
        recorded = entry.get("sha256")
        if recorded is not None:
            on_disk = stored_digest(path)
            if on_disk is not None and on_disk != recorded:
                raise ValueError(
                    f"registry digest mismatch for v{entry['version']}: "
                    f"index records {recorded[:12]}..., file carries "
                    f"{on_disk[:12]}... (file swapped or index stale)"
                )
        return BrowserPolygraph.load(path)


class RetrainingOrchestrator:
    """Drift-triggered retraining with verified promotion.

    Without ``rollout``, a verified candidate is promoted directly (the
    pre-rollout behaviour).  With one, the candidate is staged and the
    rollout manager owns the rest of its life; the orchestrator adopts
    the candidate's window only when the rollout completes.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        accuracy_floor: float = 0.985,
        max_window_sessions: Optional[int] = None,
        rollout=None,
        jobs: int = 1,
        pipeline_config=None,
    ) -> None:
        if not 0.0 < accuracy_floor < 1.0:
            raise ValueError("accuracy_floor must lie in (0, 1)")
        self.registry = registry
        self.accuracy_floor = accuracy_floor
        self.max_window_sessions = max_window_sessions
        self.rollout = rollout
        # Worker processes for every fit this orchestrator runs; results
        # are bit-identical at any setting (see repro.ml.parallel).
        self.jobs = jobs
        # Optional PipelineConfig every fit uses (bootstrap and retrain
        # candidates alike) — how a deployment trains its serving models
        # with e.g. ``unknown_ua_policy="infer"`` turned on.
        self.pipeline_config = pipeline_config
        self.window: Optional[Dataset] = None
        self.current: Optional[BrowserPolygraph] = None
        self.history: List[RetrainingOutcome] = []

    def _fresh_pipeline(self) -> BrowserPolygraph:
        if self.pipeline_config is not None:
            return BrowserPolygraph(self.pipeline_config)
        return BrowserPolygraph()

    # ------------------------------------------------------------------

    def bootstrap(self, training: Dataset, on: date) -> BrowserPolygraph:
        """Initial training and promotion (version 1)."""
        self.window = training
        polygraph = self._fresh_pipeline().fit(training, jobs=self.jobs)
        if polygraph.accuracy < self.accuracy_floor:
            raise RuntimeError(
                f"bootstrap accuracy {polygraph.accuracy:.4f} below the "
                f"{self.accuracy_floor:.4f} floor"
            )
        self.registry.promote(polygraph, on, "bootstrap")
        self.current = polygraph
        return polygraph

    def scheduled_check(
        self, live: Dataset, on: date, force: bool = False
    ) -> RetrainingOutcome:
        """One Section 6.6 check: evaluate drift, retrain if triggered.

        ``force`` retrains even when no release registers as drifted —
        the flag-rate monitor's escalation path.  A sagging flag rate
        with a clean drift report usually means the serving model's
        cluster table has fallen behind the release calendar (its
        unknown-UA blind spot is growing), which a window refresh fixes
        without any cluster having moved.
        """
        if self.current is None or self.window is None:
            raise RuntimeError("orchestrator not bootstrapped")

        # The check's own date stamps every record: drift evaluation
        # runs under the caller's clock (real or virtual), never an
        # implicit today.
        records = self.current.drift_report(live, check_date=on)
        drifted = [
            r.ua_key
            for r in records
            if r.retrain_needed(self.current.config.drift_accuracy_threshold)
        ]
        if not drifted and not force:
            outcome = RetrainingOutcome(
                check_date=on,
                drift_detected=False,
                retrained=False,
                promoted=False,
                accuracy=self.current.accuracy,
                detail="no drift; model unchanged",
            )
            self.history.append(outcome)
            return outcome

        if self.rollout is not None and self.rollout.in_flight:
            outcome = RetrainingOutcome(
                check_date=on,
                drift_detected=bool(drifted),
                retrained=False,
                promoted=False,
                accuracy=self.current.accuracy,
                detail="retrain needed but a rollout is in flight; deferred",
            )
            self.history.append(outcome)
            return outcome

        extended = self._extend_window(live)
        candidate = self._fresh_pipeline().fit(extended, jobs=self.jobs)
        verified, detail = self._verify_candidate(candidate, live, drifted)
        reason = (
            f"drift in {', '.join(sorted(drifted))}"
            if drifted
            else "forced refresh (flag-rate alarm)"
        )
        promoted = False
        staged_version: Optional[int] = None
        if verified and self.rollout is not None:
            staged_version = self.registry.stage_candidate(candidate, on, reason)
            self.rollout.begin(
                candidate,
                staged_version,
                on_complete=lambda: self._adopt(candidate, extended),
            )
            detail = (
                f"staged v{staged_version} for rollout "
                f"({detail.replace('promoted', 'verified')})"
            )
        elif verified:
            self.registry.promote(candidate, on, reason)
            self._adopt(candidate, extended)
            promoted = True
        outcome = RetrainingOutcome(
            check_date=on,
            drift_detected=bool(drifted),
            retrained=True,
            promoted=promoted,
            accuracy=candidate.accuracy,
            detail=detail,
            staged_version=staged_version,
        )
        self.history.append(outcome)
        return outcome

    # ------------------------------------------------------------------

    def _adopt(self, candidate: BrowserPolygraph, window: Dataset) -> None:
        """Make a candidate the orchestrator's current model + window."""
        self.current = candidate
        self.window = window

    def _extend_window(self, live: Dataset) -> Dataset:
        extended = Dataset.concatenate([self.window, live])
        if (
            self.max_window_sessions is not None
            and len(extended) > self.max_window_sessions
        ):
            # Slide the window: keep the newest sessions (a zero-copy
            # row view, so the trimmed prefix is never materialized).
            extended = extended.rows(
                len(extended) - self.max_window_sessions, len(extended)
            )
        return extended

    def _verify_candidate(
        self,
        candidate: BrowserPolygraph,
        live: Dataset,
        drifted: List[str],
    ) -> tuple:
        if candidate.accuracy < self.accuracy_floor:
            return False, (
                f"candidate accuracy {candidate.accuracy:.4f} below floor; "
                "keeping the previous model"
            )
        missing = [
            key
            for key in drifted
            if candidate.cluster_model.expected_cluster(key) is None
        ]
        if missing:
            return False, (
                f"candidate did not absorb {', '.join(missing)}; "
                "keeping the previous model"
            )
        still_drifting = candidate.drift_report(live)
        if candidate.retrain_needed(still_drifting):
            return False, "candidate still reports drift; keeping previous model"
        return True, f"promoted after absorbing {', '.join(sorted(drifted))}"
