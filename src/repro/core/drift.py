"""Drift detection (Sections 6.6 and 7.3).

On designated dates — a few days after each Firefox release, with the
newest Chrome and Edge typically one to two weeks older — the module
takes the sessions of each *new* browser release, computes:

* the **predominant cluster** the release's fingerprints land in, and
* the **accuracy**: the share of that release's sessions landing there,

and compares the cluster against the release's *closest prior release*
in the trained table (paper Table 3).  A changed cluster, or accuracy
below 98%, signals a behaviour shift and triggers retraining — which in
the paper's data first happened in late October 2023, when Firefox 119
moved clusters and Chrome 119 dropped to 97.22%.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.browsers.useragent import Vendor, parse_ua_key
from repro.core.clustering import ClusterModel
from repro.traffic.dataset import Dataset

__all__ = ["DriftDetector", "DriftRecord"]


@dataclass(frozen=True)
class DriftRecord:
    """Drift evaluation of one new browser release (a Table 6 row)."""

    ua_key: str
    check_date: Optional[date]
    cluster: int
    accuracy: float
    baseline_ua: Optional[str]
    baseline_cluster: Optional[int]
    n_sessions: int

    @property
    def cluster_changed(self) -> bool:
        """Whether the release left its predecessor's cluster."""
        return (
            self.baseline_cluster is not None
            and self.cluster != self.baseline_cluster
        )

    def retrain_needed(self, accuracy_threshold: float) -> bool:
        """The Section 6.6 trigger for this release."""
        return self.cluster_changed or self.accuracy < accuracy_threshold


class DriftDetector:
    """Evaluates new releases against a trained cluster table."""

    def __init__(self, model: ClusterModel) -> None:
        if model.kmeans is None:
            raise ValueError("DriftDetector requires a fitted ClusterModel")
        self.model = model

    # ------------------------------------------------------------------

    def evaluate_release(
        self,
        dataset: Dataset,
        ua_key: str,
        check_date: Optional[date] = None,
    ) -> DriftRecord:
        """Evaluate one release from its sessions in ``dataset``."""
        mask = dataset.ua_keys == ua_key
        count = int(mask.sum())
        if count == 0:
            raise ValueError(f"no sessions for {ua_key!r} in the dataset")
        subset = dataset.subset(mask)
        clusters = self.model.predict_clusters(subset.matrix())
        counts = Counter(int(c) for c in clusters)
        cluster, majority = counts.most_common(1)[0]
        baseline = self._closest_prior_release(ua_key)
        return DriftRecord(
            ua_key=ua_key,
            check_date=check_date,
            cluster=cluster,
            accuracy=majority / count,
            baseline_ua=baseline,
            baseline_cluster=(
                self.model.expected_cluster(baseline) if baseline else None
            ),
            n_sessions=count,
        )

    def evaluate_window(
        self,
        dataset: Dataset,
        check_dates: Optional[Dict[str, date]] = None,
        min_sessions: int = 50,
        check_date: Optional[date] = None,
    ) -> List[DriftRecord]:
        """Evaluate every release in ``dataset`` not in the trained table.

        ``check_dates`` optionally attaches the designated evaluation
        date per ``ua_key`` (for Table 6 style reporting); ``check_date``
        is the fallback stamp for keys not in that map — callers running
        under an explicit clock (the retraining orchestrator, the
        gauntlet's virtual timeline) pass the evaluation day here so
        records never carry an implicit "today".  Releases with fewer
        than ``min_sessions`` sessions are skipped: a couple of
        straggler sessions cannot support a drift verdict (the paper
        checks releases only once they carry real traffic).
        """
        records = []
        for ua_key in dataset.distinct_releases():
            if self.model.expected_cluster(ua_key) is not None:
                continue  # already part of the trained table
            if int((dataset.ua_keys == ua_key).sum()) < min_sessions:
                continue
            records.append(
                self.evaluate_release(
                    dataset,
                    ua_key,
                    (check_dates or {}).get(ua_key, check_date),
                )
            )
        return sorted(records, key=_record_order)

    def retrain_needed(
        self, records: Sequence[DriftRecord], accuracy_threshold: Optional[float] = None
    ) -> bool:
        """Whether any record trips the retraining trigger."""
        threshold = (
            accuracy_threshold
            if accuracy_threshold is not None
            else self.model.config.drift_accuracy_threshold
        )
        return any(record.retrain_needed(threshold) for record in records)

    # ------------------------------------------------------------------

    def _closest_prior_release(self, ua_key: str) -> Optional[str]:
        """Nearest same-vendor release present in the trained table."""
        parsed = parse_ua_key(ua_key)
        best: Optional[str] = None
        best_gap = None
        for known in self.model.ua_to_cluster:
            other = parse_ua_key(known)
            if other.vendor is not parsed.vendor:
                continue
            if other.version >= parsed.version:
                continue
            gap = parsed.version - other.version
            if best_gap is None or gap < best_gap:
                best_gap = gap
                best = known
        return best


def _record_order(record: DriftRecord):
    parsed = parse_ua_key(record.ua_key)
    vendor_rank = {Vendor.CHROME: 0, Vendor.FIREFOX: 1, Vendor.EDGE: 2}
    return (parsed.version, vendor_rank.get(parsed.vendor, 9))
