"""Clustering model and the cluster-to-user-agent table (Section 6.4).

:class:`ClusterModel` owns the trained chain
``StandardScaler -> IsolationForest -> PCA -> KMeans`` plus the
artifact fraud detection actually consumes: the table mapping each
cluster to the user-agents whose sessions it holds (paper Table 3).

Two paper-specific refinements:

* **Majority mapping** — a user-agent's cluster is the one holding the
  majority of its sessions (Appendix-4 Formula 1); the training
  accuracy is the share of sessions landing in their user-agent's
  majority cluster (99.6% in the deployment).
* **Rare-UA alignment** — user-agents with fewer than ``min_ua_support``
  sessions (<100 in the paper) can be assigned misleading clusters by
  the data alone, so their table entry is overridden by the cluster of
  their *reference fingerprint* from the candidate-generation lab runs
  (Section 6.4.3's adjustment for Chrome 81 / Edge 17).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import UserAgentError, parse_ua_key
from repro.core.config import PipelineConfig
from repro.core.preprocessing import Preprocessor
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.jsengine.evolution import EvolutionModel, default_model
from repro.ml.kmeans import KMeans
from repro.ml.metrics import majority_cluster_accuracy, majority_cluster_map
from repro.ml.pca import PCA

__all__ = ["ClusterModel"]


class ClusterModel:
    """Trained clustering of coarse-grained fingerprints.

    Attributes (after :meth:`fit`)
    ------------------------------
    ua_to_cluster:
        ``{ua_key: cluster}`` — each user-agent's majority (or aligned)
        cluster.
    cluster_table:
        ``{cluster: [ua_key, ...]}`` — the paper's Table 3, including
        empty clusters that hold no majority user-agent.
    accuracy_:
        Majority-cluster training accuracy (Formula 1).
    n_outliers_:
        Rows removed by the Isolation Forest before training.
    aligned_uas_:
        User-agents whose table entry came from reference alignment.
    """

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        specs: Sequence[FeatureSpec] = FEATURE_SPECS,
        model: Optional[EvolutionModel] = None,
    ) -> None:
        self.config = config
        self.specs = tuple(specs)
        self.evolution = model if model is not None else default_model()
        self.preprocessor = Preprocessor(config)
        self.pca: Optional[PCA] = None
        self.kmeans: Optional[KMeans] = None
        self.ua_to_cluster: Dict[str, int] = {}
        self.cluster_table: Dict[int, List[str]] = {}
        self.accuracy_: Optional[float] = None
        self.n_outliers_: Optional[int] = None
        self.inlier_mask_: Optional[np.ndarray] = None
        self.aligned_uas_: List[str] = []
        self.trained_ua_support_: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def fit(
        self,
        matrix: np.ndarray,
        ua_keys: Sequence[str],
        align_rare: bool = True,
        jobs: int = 1,
    ) -> "ClusterModel":
        """Train the full chain and build the cluster table.

        ``jobs`` sets the worker-process count for the KMeans restarts;
        any value yields a bit-identical model.
        """
        data = np.asarray(matrix, dtype=float)
        keys = list(ua_keys)
        if data.shape[0] != len(keys):
            raise ValueError("matrix rows and ua_keys must align")

        scaled, inliers = self.preprocessor.fit(data)
        inliers = self._select_outliers(data, keys)
        self.inlier_mask_ = inliers
        self.n_outliers_ = int((~inliers).sum())
        train = scaled[inliers]
        train_keys = [k for k, keep in zip(keys, inliers) if keep]

        self.pca = PCA(n_components=self.config.n_pca_components).fit(train)
        projected = self.pca.transform(train)
        self.kmeans = KMeans(
            n_clusters=self.config.n_clusters,
            n_init=self.config.kmeans_n_init,
            random_state=self.config.random_state,
            jobs=jobs,
        ).fit(projected)

        labels = self.kmeans.labels_
        self.trained_ua_support_ = dict(Counter(train_keys))
        self.ua_to_cluster = majority_cluster_map(train_keys, labels)
        self.accuracy_ = majority_cluster_accuracy(train_keys, labels)
        if align_rare:
            self._align_rare_user_agents()
        self._rebuild_table()
        return self

    def predict_clusters(self, matrix: np.ndarray) -> np.ndarray:
        """Cluster assignment for raw (unscaled) feature rows."""
        self._check_fitted()
        scaled = self.preprocessor.transform(matrix)
        return self.kmeans.predict(self.pca.transform(scaled))

    def predict_cluster(self, vector: np.ndarray) -> int:
        """Cluster assignment for one raw feature vector."""
        return int(self.predict_clusters(np.asarray(vector)[None, :])[0])

    def expected_cluster(self, ua_key: str) -> Optional[int]:
        """Table cluster of a user-agent, or ``None`` if unknown."""
        return self.ua_to_cluster.get(ua_key)

    def cluster_members(self, cluster: int) -> List[str]:
        """User-agent keys assigned to ``cluster`` (possibly empty)."""
        return list(self.cluster_table.get(int(cluster), []))

    def empty_clusters(self) -> List[int]:
        """Clusters holding no majority user-agent (Table 3's gaps)."""
        self._check_fitted()
        return sorted(
            c for c in range(self.config.n_clusters) if not self.cluster_table.get(c)
        )

    def reference_vector(self, ua_key: str) -> Optional[np.ndarray]:
        """Lab fingerprint of a pristine install of ``ua_key``."""
        try:
            parsed = parse_ua_key(ua_key)
        except UserAgentError:
            return None
        profile = BrowserProfile(parsed.vendor, parsed.version)
        collector = FingerprintCollector(self.specs)
        return collector.collect(profile.environment(self.evolution))

    # ------------------------------------------------------------------

    def _select_outliers(self, data: np.ndarray, keys: List[str]) -> np.ndarray:
        """Pick the training outliers, skipping legitimate relics.

        The paper manually verified that none of the rows its Isolation
        Forest eliminated "corresponded to feature values of a legitimate
        browser instance".  This automates that verification: walking
        down the anomaly-score ranking, rows whose vector equals the
        reference fingerprint of their claimed release (rare-but-genuine
        relics such as legacy Edge) are kept, and the contamination
        budget is spent on the highest-scoring *non-legitimate* rows.
        """
        forest = self.preprocessor.outlier_model
        scores = forest.fit_scores_
        budget = max(1, int(round(self.config.outlier_contamination * len(keys))))
        # Walk the full ranking if needed: whole relic populations
        # (hundreds of identical legacy-Edge rows) can occupy the top of
        # the anomaly scores, and all of them are legitimate.
        order = np.argsort(scores)[::-1]

        reference_cache: Dict[str, Optional[tuple]] = {}
        inliers = np.ones(len(keys), dtype=bool)
        removed = 0
        for idx in order:
            if removed >= budget:
                break
            key = keys[idx]
            if key not in reference_cache:
                vector = self.reference_vector(key)
                reference_cache[key] = (
                    None if vector is None else tuple(int(v) for v in vector)
                )
            reference = reference_cache[key]
            if reference is not None and reference == tuple(
                int(v) for v in data[idx]
            ):
                continue  # a pristine legitimate fingerprint: keep it
            inliers[idx] = False
            removed += 1
        return inliers

    def _align_rare_user_agents(self) -> None:
        """Override table entries of under-supported user-agents."""
        self.aligned_uas_ = []
        for ua_key, support in sorted(self.trained_ua_support_.items()):
            if support >= self.config.min_ua_support:
                continue
            reference = self.reference_vector(ua_key)
            if reference is None:
                continue
            aligned = self.predict_cluster(reference)
            if aligned != self.ua_to_cluster.get(ua_key):
                self.ua_to_cluster[ua_key] = aligned
                self.aligned_uas_.append(ua_key)

    def _rebuild_table(self) -> None:
        table: Dict[int, List[str]] = {
            c: [] for c in range(self.config.n_clusters)
        }
        for ua_key, cluster in sorted(self.ua_to_cluster.items()):
            table[cluster].append(ua_key)
        self.cluster_table = table

    def _check_fitted(self) -> None:
        if self.kmeans is None or self.pca is None:
            raise RuntimeError("ClusterModel is not fitted; call fit() first")
