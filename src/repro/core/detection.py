"""Online fraud detection (Section 6.5).

For every incoming session the detector:

1. predicts the cluster of the session's coarse-grained fingerprint;
2. looks up the cluster its claimed user-agent *should* be in
   (paper Table 3);
3. flags the session when the two disagree, attaching Algorithm 1's
   risk factor computed against the predicted cluster's user-agents.

Sessions whose user-agent is outside the trained table are out of scope
for the paper (mobile browsers, exotic engines); the
``unknown_ua_policy`` config decides whether they are ignored (default),
flagged, or scored against the nearest known release of the same vendor
and engine (``"infer"`` — the interim coverage mode that bridges the
blind window between a release shipping and the next retrain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.browsers.releases import engine_for_vendor
from repro.browsers.useragent import (
    ParsedUserAgent,
    UserAgentError,
    parse_ua_key,
    parse_user_agent,
)
from repro.core.clustering import ClusterModel
from repro.core.risk import risk_factor
from repro.traffic.dataset import Dataset

__all__ = ["DetectionReport", "DetectionResult", "FraudDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of evaluating one session.

    Under ``unknown_ua_policy="infer"`` an unknown release is scored
    against the nearest known release of the same vendor *and* engine;
    ``inferred_release`` / ``inferred_distance`` record that mapping so
    downstream consumers (the risk engine, the coverage tracker) can
    tell an exact table hit from an interim nearest-release verdict.
    """

    ua_key: str
    predicted_cluster: int
    expected_cluster: Optional[int]
    flagged: bool
    risk_factor: Optional[int]
    inferred_release: Optional[str] = None
    inferred_distance: Optional[int] = None

    @property
    def known_ua(self) -> bool:
        """Whether the claimed user-agent exists in the trained table.

        An inferred verdict scored against a *neighbouring* release is
        still an unknown user-agent: the expected cluster is borrowed,
        not looked up.
        """
        return self.expected_cluster is not None and self.inferred_release is None


@dataclass
class DetectionReport:
    """Vectorized outcome over a dataset."""

    ua_keys: np.ndarray
    predicted: np.ndarray
    expected: np.ndarray  # -1 where the user-agent is unknown
    flagged: np.ndarray
    risk_factors: np.ndarray  # -1 where not flagged

    def __len__(self) -> int:
        return int(self.flagged.shape[0])

    @property
    def n_flagged(self) -> int:
        """Number of flagged sessions."""
        return int(self.flagged.sum())

    @property
    def n_unknown_ua(self) -> int:
        """Sessions whose user-agent is outside the trained table."""
        return int((self.expected < 0).sum())

    def flagged_indices(self) -> np.ndarray:
        """Row indices of flagged sessions."""
        return np.nonzero(self.flagged)[0]

    def risk_over(self, threshold: int) -> np.ndarray:
        """Mask of flagged sessions with ``risk_factor > threshold``."""
        return self.flagged & (self.risk_factors > threshold)


class FraudDetector:
    """Applies a trained :class:`ClusterModel` to live sessions."""

    def __init__(self, model: ClusterModel) -> None:
        if model.kmeans is None:
            raise ValueError("FraudDetector requires a fitted ClusterModel")
        self.model = model
        self.config = model.config
        # Pre-parse each cluster's user-agents once: Algorithm 1 runs per
        # session and must stay cheap.
        self._cluster_parsed: Dict[int, List[ParsedUserAgent]] = {
            cluster: [parse_ua_key(k) for k in keys]
            for cluster, keys in model.cluster_table.items()
        }
        # Known releases grouped by (vendor, engine), version-sorted —
        # the lookup table for ``unknown_ua_policy="infer"``.  Grouping
        # by engine keeps inference honest across engine transitions:
        # an unknown edge-78 (EdgeHTML) must map to the nearest legacy
        # Edge release, never to the numerically adjacent Chromium
        # edge-79.
        self._known_releases: Dict[Tuple, List[Tuple[int, str]]] = {}
        for key in model.ua_to_cluster:
            try:
                parsed = parse_ua_key(key)
            except UserAgentError:
                continue
            group = (parsed.vendor, engine_for_vendor(parsed.vendor, parsed.version))
            self._known_releases.setdefault(group, []).append(
                (parsed.version, key)
            )
        for versions in self._known_releases.values():
            versions.sort()

    # ------------------------------------------------------------------

    def evaluate_vector(self, vector: np.ndarray, user_agent: str) -> DetectionResult:
        """Evaluate one session from its raw feature vector and UA."""
        parsed = self._parse(user_agent)
        predicted = self.model.predict_cluster(np.asarray(vector))
        return self._decide(parsed, predicted)

    def evaluate_vectors(
        self, matrix: np.ndarray, user_agents: Sequence[str]
    ) -> List[DetectionResult]:
        """Evaluate many sessions in one vectorized model call.

        ``matrix`` is an ``(n, n_features)`` array of raw feature rows
        and ``user_agents`` the matching claimed user-agents (full
        ``Mozilla/...`` strings or ``vendor-version`` keys).  The model
        chain runs once on the whole matrix, and the per-session
        decision is memoized on ``(user_agent, predicted cluster)`` —
        coarse-grained fingerprints are low-cardinality by design, so a
        large batch costs a handful of Algorithm 1 evaluations.

        Row ``i`` of the return value is identical to
        ``evaluate_vector(matrix[i], user_agents[i])``.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        if data.shape[0] != len(user_agents):
            raise ValueError("matrix rows and user_agents must align")
        predicted = self.model.predict_clusters(data)
        memo: Dict = {}
        results: List[DetectionResult] = []
        for user_agent, cluster in zip(user_agents, predicted):
            key = (user_agent, int(cluster))
            result = memo.get(key)
            if result is None:
                result = self._decide(self._parse(str(user_agent)), key[1])
                memo[key] = result
            results.append(result)
        return results

    def evaluate_dataset(self, dataset: Dataset) -> DetectionReport:
        """Evaluate every session of a dataset (vectorized prediction)."""
        predicted = self.model.predict_clusters(dataset.matrix())
        n = len(dataset)
        expected = np.full(n, -1, dtype=np.int64)
        flagged = np.zeros(n, dtype=bool)
        risks = np.full(n, -1, dtype=np.int64)
        # The decision depends only on (ua_key, predicted cluster); memoize
        # it so 205k rows cost a few hundred Algorithm 1 evaluations.
        memo: Dict = {}
        for idx in range(n):
            key = (dataset.ua_keys[idx], int(predicted[idx]))
            result = memo.get(key)
            if result is None:
                result = self._decide_key(str(key[0]), key[1])
                memo[key] = result
            expected[idx] = -1 if result.expected_cluster is None else result.expected_cluster
            flagged[idx] = result.flagged
            if result.risk_factor is not None:
                risks[idx] = result.risk_factor
        return DetectionReport(
            ua_keys=dataset.ua_keys.copy(),
            predicted=predicted.astype(np.int64),
            expected=expected,
            flagged=flagged,
            risk_factors=risks,
        )

    # ------------------------------------------------------------------

    def _parse(self, user_agent: str) -> Optional[ParsedUserAgent]:
        try:
            if user_agent.startswith("Mozilla/"):
                return parse_user_agent(user_agent)
            return parse_ua_key(user_agent)
        except UserAgentError:
            return None

    def _decide(
        self, parsed: Optional[ParsedUserAgent], predicted: int
    ) -> DetectionResult:
        if parsed is None:
            return self._unknown("<unparseable>", predicted)
        return self._decide_key(parsed.key(), predicted)

    def _decide_key(self, ua_key: str, predicted: int) -> DetectionResult:
        expected = self.model.expected_cluster(ua_key)
        if expected is None:
            return self._unknown(ua_key, predicted)
        if predicted == expected:
            return DetectionResult(ua_key, predicted, expected, False, None)
        risk = risk_factor(
            ua_key,
            self._cluster_parsed.get(predicted, ()),
            vendor_mismatch=self.config.vendor_mismatch_risk,
            version_divisor=self.config.version_divisor,
        )
        return DetectionResult(ua_key, predicted, expected, True, risk)

    def _unknown(self, ua_key: str, predicted: int) -> DetectionResult:
        policy = self.config.unknown_ua_policy
        if policy == "infer":
            inferred = self._infer(ua_key, predicted)
            if inferred is not None:
                return inferred
            # Unparseable key, or no same-vendor/engine release in the
            # table to borrow from: fall back to the ignore behaviour
            # (an interim guess with nothing to anchor it would be a
            # blanket flag in disguise).
            return DetectionResult(ua_key, predicted, None, False, None)
        if policy == "flag":
            risk = risk_factor(
                ua_key,
                self._cluster_parsed.get(predicted, ()),
                vendor_mismatch=self.config.vendor_mismatch_risk,
                version_divisor=self.config.version_divisor,
            ) if _parseable(ua_key) else self.config.vendor_mismatch_risk
            return DetectionResult(ua_key, predicted, None, True, risk)
        return DetectionResult(ua_key, predicted, None, False, None)

    def _infer(self, ua_key: str, predicted: int) -> Optional[DetectionResult]:
        """Score an unknown release against its nearest known neighbour.

        The neighbour is the known release of the same vendor *and*
        engine with the smallest version distance (ties break toward
        the older release — the conservative anchor).  The verdict is
        the ordinary cluster-mismatch decision against the neighbour's
        expected cluster, with provenance attached.
        """
        try:
            parsed = parse_ua_key(ua_key)
        except UserAgentError:
            return None
        group = (parsed.vendor, engine_for_vendor(parsed.vendor, parsed.version))
        candidates = self._known_releases.get(group)
        if not candidates:
            return None
        version, nearest = min(
            candidates, key=lambda entry: (abs(entry[0] - parsed.version), entry[0])
        )
        expected = self.model.expected_cluster(nearest)
        if expected is None:  # pragma: no cover - table/index mismatch guard
            return None
        distance = abs(version - parsed.version)
        if predicted == expected:
            return DetectionResult(
                ua_key, predicted, expected, False, None,
                inferred_release=nearest, inferred_distance=distance,
            )
        risk = risk_factor(
            ua_key,
            self._cluster_parsed.get(predicted, ()),
            vendor_mismatch=self.config.vendor_mismatch_risk,
            version_divisor=self.config.version_divisor,
        )
        return DetectionResult(
            ua_key, predicted, expected, True, risk,
            inferred_release=nearest, inferred_distance=distance,
        )


def _parseable(ua_key: str) -> bool:
    try:
        parse_ua_key(ua_key)
        return True
    except UserAgentError:
        return False
