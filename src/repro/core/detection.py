"""Online fraud detection (Section 6.5).

For every incoming session the detector:

1. predicts the cluster of the session's coarse-grained fingerprint;
2. looks up the cluster its claimed user-agent *should* be in
   (paper Table 3);
3. flags the session when the two disagree, attaching Algorithm 1's
   risk factor computed against the predicted cluster's user-agents.

Sessions whose user-agent is outside the trained table are out of scope
for the paper (mobile browsers, exotic engines); the
``unknown_ua_policy`` config decides whether they are ignored (default)
or flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.browsers.useragent import (
    ParsedUserAgent,
    UserAgentError,
    parse_ua_key,
    parse_user_agent,
)
from repro.core.clustering import ClusterModel
from repro.core.risk import risk_factor
from repro.traffic.dataset import Dataset

__all__ = ["DetectionReport", "DetectionResult", "FraudDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of evaluating one session."""

    ua_key: str
    predicted_cluster: int
    expected_cluster: Optional[int]
    flagged: bool
    risk_factor: Optional[int]

    @property
    def known_ua(self) -> bool:
        """Whether the claimed user-agent exists in the trained table."""
        return self.expected_cluster is not None


@dataclass
class DetectionReport:
    """Vectorized outcome over a dataset."""

    ua_keys: np.ndarray
    predicted: np.ndarray
    expected: np.ndarray  # -1 where the user-agent is unknown
    flagged: np.ndarray
    risk_factors: np.ndarray  # -1 where not flagged

    def __len__(self) -> int:
        return int(self.flagged.shape[0])

    @property
    def n_flagged(self) -> int:
        """Number of flagged sessions."""
        return int(self.flagged.sum())

    @property
    def n_unknown_ua(self) -> int:
        """Sessions whose user-agent is outside the trained table."""
        return int((self.expected < 0).sum())

    def flagged_indices(self) -> np.ndarray:
        """Row indices of flagged sessions."""
        return np.nonzero(self.flagged)[0]

    def risk_over(self, threshold: int) -> np.ndarray:
        """Mask of flagged sessions with ``risk_factor > threshold``."""
        return self.flagged & (self.risk_factors > threshold)


class FraudDetector:
    """Applies a trained :class:`ClusterModel` to live sessions."""

    def __init__(self, model: ClusterModel) -> None:
        if model.kmeans is None:
            raise ValueError("FraudDetector requires a fitted ClusterModel")
        self.model = model
        self.config = model.config
        # Pre-parse each cluster's user-agents once: Algorithm 1 runs per
        # session and must stay cheap.
        self._cluster_parsed: Dict[int, List[ParsedUserAgent]] = {
            cluster: [parse_ua_key(k) for k in keys]
            for cluster, keys in model.cluster_table.items()
        }

    # ------------------------------------------------------------------

    def evaluate_vector(self, vector: np.ndarray, user_agent: str) -> DetectionResult:
        """Evaluate one session from its raw feature vector and UA."""
        parsed = self._parse(user_agent)
        predicted = self.model.predict_cluster(np.asarray(vector))
        return self._decide(parsed, predicted)

    def evaluate_vectors(
        self, matrix: np.ndarray, user_agents: Sequence[str]
    ) -> List[DetectionResult]:
        """Evaluate many sessions in one vectorized model call.

        ``matrix`` is an ``(n, n_features)`` array of raw feature rows
        and ``user_agents`` the matching claimed user-agents (full
        ``Mozilla/...`` strings or ``vendor-version`` keys).  The model
        chain runs once on the whole matrix, and the per-session
        decision is memoized on ``(user_agent, predicted cluster)`` —
        coarse-grained fingerprints are low-cardinality by design, so a
        large batch costs a handful of Algorithm 1 evaluations.

        Row ``i`` of the return value is identical to
        ``evaluate_vector(matrix[i], user_agents[i])``.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        if data.shape[0] != len(user_agents):
            raise ValueError("matrix rows and user_agents must align")
        predicted = self.model.predict_clusters(data)
        memo: Dict = {}
        results: List[DetectionResult] = []
        for user_agent, cluster in zip(user_agents, predicted):
            key = (user_agent, int(cluster))
            result = memo.get(key)
            if result is None:
                result = self._decide(self._parse(str(user_agent)), key[1])
                memo[key] = result
            results.append(result)
        return results

    def evaluate_dataset(self, dataset: Dataset) -> DetectionReport:
        """Evaluate every session of a dataset (vectorized prediction)."""
        predicted = self.model.predict_clusters(dataset.matrix())
        n = len(dataset)
        expected = np.full(n, -1, dtype=np.int64)
        flagged = np.zeros(n, dtype=bool)
        risks = np.full(n, -1, dtype=np.int64)
        # The decision depends only on (ua_key, predicted cluster); memoize
        # it so 205k rows cost a few hundred Algorithm 1 evaluations.
        memo: Dict = {}
        for idx in range(n):
            key = (dataset.ua_keys[idx], int(predicted[idx]))
            result = memo.get(key)
            if result is None:
                result = self._decide_key(str(key[0]), key[1])
                memo[key] = result
            expected[idx] = -1 if result.expected_cluster is None else result.expected_cluster
            flagged[idx] = result.flagged
            if result.risk_factor is not None:
                risks[idx] = result.risk_factor
        return DetectionReport(
            ua_keys=dataset.ua_keys.copy(),
            predicted=predicted.astype(np.int64),
            expected=expected,
            flagged=flagged,
            risk_factors=risks,
        )

    # ------------------------------------------------------------------

    def _parse(self, user_agent: str) -> Optional[ParsedUserAgent]:
        try:
            if user_agent.startswith("Mozilla/"):
                return parse_user_agent(user_agent)
            return parse_ua_key(user_agent)
        except UserAgentError:
            return None

    def _decide(
        self, parsed: Optional[ParsedUserAgent], predicted: int
    ) -> DetectionResult:
        if parsed is None:
            return self._unknown("<unparseable>", predicted)
        return self._decide_key(parsed.key(), predicted)

    def _decide_key(self, ua_key: str, predicted: int) -> DetectionResult:
        expected = self.model.expected_cluster(ua_key)
        if expected is None:
            return self._unknown(ua_key, predicted)
        if predicted == expected:
            return DetectionResult(ua_key, predicted, expected, False, None)
        risk = risk_factor(
            ua_key,
            self._cluster_parsed.get(predicted, ()),
            vendor_mismatch=self.config.vendor_mismatch_risk,
            version_divisor=self.config.version_divisor,
        )
        return DetectionResult(ua_key, predicted, expected, True, risk)

    def _unknown(self, ua_key: str, predicted: int) -> DetectionResult:
        if self.config.unknown_ua_policy == "flag":
            risk = risk_factor(
                ua_key,
                self._cluster_parsed.get(predicted, ()),
                vendor_mismatch=self.config.vendor_mismatch_risk,
                version_divisor=self.config.version_divisor,
            ) if _parseable(ua_key) else self.config.vendor_mismatch_risk
            return DetectionResult(ua_key, predicted, None, True, risk)
        return DetectionResult(ua_key, predicted, None, False, None)


def _parseable(ua_key: str) -> bool:
    try:
        parse_ua_key(ua_key)
        return True
    except UserAgentError:
        return False
