"""Algorithm 1: the risk factor.

Given a session's claimed user-agent and the user-agents belonging to
the cluster its *fingerprint* landed in, the risk factor is the minimum
distance between the claimed user-agent and any user-agent of the
predicted cluster:

* different vendors → distance 20 (the maximum);
* same vendor → ``floor(|version difference| / 4)`` (the divisor 4 was
  chosen empirically from the version spans in paper Table 3).

A small risk factor therefore means "the fingerprint looks like a
nearby release of the same vendor" — usually benign update skew — while
a large one means the fingerprint belongs to a different vendor or a
far-away release.

The paper's pseudocode initializes the risk factor to infinity; for an
empty predicted cluster (one of the clusters of Table 3 that holds no
majority user-agent) we return the vendor-mismatch maximum instead,
since "matches no known browser at all" is at least as suspicious as a
vendor mismatch.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.browsers.useragent import ParsedUserAgent, parse_ua_key, parse_user_agent

__all__ = ["risk_factor", "user_agent_distance"]

UserAgentLike = Union[str, ParsedUserAgent]


def _coerce(value: UserAgentLike) -> ParsedUserAgent:
    if isinstance(value, ParsedUserAgent):
        return value
    text = str(value)
    # Accept both full user-agent strings and short "vendor-version" keys.
    if text.startswith("Mozilla/"):
        return parse_user_agent(text)
    return parse_ua_key(text)


def user_agent_distance(
    session_ua: UserAgentLike,
    other_ua: UserAgentLike,
    vendor_mismatch: int = 20,
    version_divisor: int = 4,
) -> int:
    """Distance between two user-agents (Algorithm 1's inner step)."""
    session = _coerce(session_ua)
    other = _coerce(other_ua)
    if session.vendor is not other.vendor:
        return int(vendor_mismatch)
    return abs(session.version - other.version) // int(version_divisor)


def risk_factor(
    session_ua: UserAgentLike,
    cluster_user_agents: Iterable[UserAgentLike],
    vendor_mismatch: int = 20,
    version_divisor: int = 4,
) -> int:
    """Risk factor of a session (Algorithm 1).

    ``cluster_user_agents`` are the user-agents assigned to the
    session's *predicted* cluster.  An empty collection yields the
    vendor-mismatch maximum (see module docstring).
    """
    best = None
    for other in cluster_user_agents:
        distance = user_agent_distance(
            session_ua, other, vendor_mismatch, version_divisor
        )
        if best is None or distance < best:
            best = distance
            if best == 0:
                break
    return int(vendor_mismatch) if best is None else int(best)
