"""Pre-processing: scaling and outlier removal (Section 6.4.1).

The deviation-based columns span very different ranges, so they are
z-scored (the binary time-based columns pass through).  An Isolation
Forest trained on the scaled matrix then removes the most isolated rows
at the paper's 0.002% contamination level — in the deployment this
dropped 172 rows, none of which matched any legitimate lab browser.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import PipelineConfig
from repro.ml.isolation_forest import IsolationForest
from repro.ml.scaler import StandardScaler

__all__ = ["Preprocessor"]


class Preprocessor:
    """Scale features and identify training outliers."""

    def __init__(self, config: PipelineConfig = PipelineConfig()) -> None:
        self.config = config
        self.scaler: Optional[StandardScaler] = None
        self.outlier_model: Optional[IsolationForest] = None
        self.n_outliers_: Optional[int] = None

    def fit(self, matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fit on a raw feature matrix.

        Returns ``(scaled, inlier_mask)``: the scaled matrix and a
        boolean mask of the rows kept for model training.
        """
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        scale_columns = self._valid_scale_columns(data.shape[1])
        self.scaler = StandardScaler(columns=scale_columns)
        scaled = self.scaler.fit_transform(data)

        self.outlier_model = IsolationForest(
            n_estimators=self.config.outlier_trees,
            contamination=self.config.outlier_contamination,
            random_state=self.config.random_state,
        )
        self.outlier_model.fit(scaled)
        # Use the fit-time mask: it caps the removed rows at exactly the
        # contamination budget even when duplicate fingerprints tie.
        mask = self.outlier_model.fit_inlier_mask_
        self.n_outliers_ = int((~mask).sum())
        return scaled, mask

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Scale new data with the fitted scaler."""
        if self.scaler is None:
            raise RuntimeError("Preprocessor is not fitted; call fit() first")
        return self.scaler.transform(np.asarray(matrix, dtype=float))

    def _valid_scale_columns(self, n_features: int) -> Optional[List[int]]:
        columns = self.config.scale_columns
        if columns is None:
            return None
        valid = [c for c in columns if 0 <= c < n_features]
        # Sensitivity sweeps change the feature count; silently clamping
        # to valid columns keeps the deviation/time split intact.
        return valid or None
