"""Stratified sampling for oversize training sets (paper Section 8).

The paper notes that if the FinOrg dataset grows beyond what training
can comfortably handle, Stratified Sampling keeps it manageable "while
ensuring the representativeness of diverse data segments ... even from
less popular browser instances".

:func:`stratified_sample` implements that: sessions are stratified by
their claimed user-agent and each stratum is capped, so downsampling a
10x larger window never starves Table 3's rare rows (legacy Edge,
ancient Chrome) the way uniform sampling would.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

import numpy as np

from repro.traffic.dataset import Dataset

__all__ = ["stratified_sample", "stratum_counts"]


def stratum_counts(dataset: Dataset) -> Dict[str, int]:
    """Sessions per user-agent stratum."""
    counts: Dict[str, int] = defaultdict(int)
    for key in dataset.ua_keys:
        counts[str(key)] += 1
    return dict(counts)


def stratified_sample(
    dataset: Dataset,
    max_per_stratum: int,
    min_per_stratum: int = 1,
    seed: Optional[int] = 0,
) -> Dataset:
    """Cap every user-agent stratum at ``max_per_stratum`` rows.

    Strata smaller than the cap are kept whole (never dropped below
    ``min_per_stratum``), so rare-but-legitimate populations survive.
    Row order is preserved, which keeps downstream runs deterministic.
    """
    if max_per_stratum < 1:
        raise ValueError("max_per_stratum must be >= 1")
    if min_per_stratum > max_per_stratum:
        raise ValueError("min_per_stratum cannot exceed max_per_stratum")

    rng = np.random.default_rng(seed)
    rows_by_stratum: Dict[str, list] = defaultdict(list)
    for idx, key in enumerate(dataset.ua_keys):
        rows_by_stratum[str(key)].append(idx)

    keep: list = []
    for key in sorted(rows_by_stratum):
        rows = rows_by_stratum[key]
        if len(rows) <= max_per_stratum:
            keep.extend(rows)
            continue
        picked = rng.choice(len(rows), size=max_per_stratum, replace=False)
        keep.extend(rows[i] for i in picked)

    keep_array = np.array(sorted(keep), dtype=np.int64)
    return dataset.subset(keep_array)
