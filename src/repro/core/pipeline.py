"""The Browser Polygraph facade.

One object tying the whole system together the way the FinOrg
deployment runs it:

>>> polygraph = BrowserPolygraph()
>>> polygraph.fit(training_dataset)          # offline (Section 6.4)
>>> report = polygraph.detect(live_dataset)  # online (Section 6.5)
>>> records = polygraph.drift_report(new)    # scheduled (Section 6.6)
>>> if polygraph.retrain_needed(records):
...     polygraph.retrain(extended_dataset)
"""

from __future__ import annotations

import threading
from datetime import date
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.clustering import ClusterModel
from repro.core.config import PipelineConfig
from repro.core.detection import DetectionReport, DetectionResult, FraudDetector
from repro.core.drift import DriftDetector, DriftRecord
from repro.core.model_store import load_model, save_model
from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.fingerprint.script import FingerprintPayload
from repro.traffic.dataset import Dataset

__all__ = ["BrowserPolygraph"]


class BrowserPolygraph:
    """End-to-end coarse-grained fraud detection pipeline."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        specs: Sequence[FeatureSpec] = FEATURE_SPECS,
    ) -> None:
        self.config = config
        self.specs = tuple(specs)
        self.cluster_model: Optional[ClusterModel] = None
        self._detector: Optional[FraudDetector] = None
        # Model swaps (fit/retrain/load) are atomic: the model, the
        # detector and the generation counter move together under this
        # lock, so a reader never observes a half-installed model.
        self._swap_lock = threading.RLock()
        self._generation = 0
        self._retrain_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # training

    def fit(
        self, dataset: Dataset, align_rare: bool = True, jobs: int = 1
    ) -> "BrowserPolygraph":
        """Train the clustering model on a FinOrg-shaped dataset.

        ``jobs`` fans the KMeans restarts over worker processes; the
        trained model is bit-identical at any setting.
        """
        if dataset.n_features != len(self.specs):
            raise ValueError(
                f"dataset has {dataset.n_features} features, "
                f"pipeline expects {len(self.specs)}"
            )
        model = ClusterModel(self.config, specs=self.specs)
        model.fit(
            dataset.matrix(),
            list(dataset.ua_keys),
            align_rare=align_rare,
            jobs=jobs,
        )
        self._install_model(model)
        return self

    def retrain(
        self, dataset: Dataset, align_rare: bool = True, jobs: int = 1
    ) -> "BrowserPolygraph":
        """Retrain from scratch on an extended window (drift response)."""
        return self.fit(dataset, align_rare=align_rare, jobs=jobs)

    def install(self, model: ClusterModel) -> "BrowserPolygraph":
        """Atomically adopt an externally trained :class:`ClusterModel`.

        The rollout manager's promotion/rollback mechanism: a candidate
        (or a restored baseline) trained elsewhere is swapped in under
        the same lock as :meth:`fit`, bumping the generation counter and
        firing the retrain listeners — so the verdict cache invalidates
        exactly as it would for an in-place retrain.
        """
        if model.kmeans is None:
            raise ValueError("cannot install an unfitted ClusterModel")
        self._install_model(model)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.cluster_model is not None

    @property
    def model_generation(self) -> int:
        """Monotonic counter bumped on every model install/swap."""
        with self._swap_lock:
            return self._generation

    def add_retrain_listener(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(generation)`` to fire after model swaps.

        The runtime's verdict cache subscribes here so a retrain (or a
        drift-triggered swap) invalidates cached verdicts immediately.
        Callbacks run outside the swap lock, after the new model is
        fully installed.
        """
        with self._swap_lock:
            self._retrain_listeners.append(callback)

    def remove_retrain_listener(self, callback: Callable[[int], None]) -> None:
        """Unregister a listener added with :meth:`add_retrain_listener`."""
        with self._swap_lock:
            if callback in self._retrain_listeners:
                self._retrain_listeners.remove(callback)

    def detection_snapshot(self) -> Tuple[int, FraudDetector]:
        """A consistent ``(generation, detector)`` pair.

        Callers scoring a batch must take one snapshot and use its
        detector for the whole batch: a retrain mid-flight then cannot
        score half the batch on the old model and half on the new one.
        """
        with self._swap_lock:
            self._require_fitted()
            return self._generation, self._detector

    @property
    def accuracy(self) -> float:
        """Majority-cluster training accuracy (paper: 99.6%)."""
        self._require_fitted()
        return float(self.cluster_model.accuracy_)

    @property
    def cluster_table(self) -> Dict[int, List[str]]:
        """The cluster-to-user-agent table (paper Table 3)."""
        self._require_fitted()
        return {k: list(v) for k, v in self.cluster_model.cluster_table.items()}

    # ------------------------------------------------------------------
    # online detection

    def detect(self, dataset: Dataset) -> DetectionReport:
        """Evaluate a batch of sessions."""
        self._require_fitted()
        return self._detector.evaluate_dataset(dataset)

    def detect_session(
        self, features: Union[np.ndarray, Sequence[int]], user_agent: str
    ) -> DetectionResult:
        """Evaluate a single session (the real-time path)."""
        self._require_fitted()
        return self._detector.evaluate_vector(np.asarray(features), user_agent)

    def detect_vectors(
        self,
        matrix: Union[np.ndarray, Sequence[Sequence[int]]],
        user_agents: Sequence[str],
    ) -> List[DetectionResult]:
        """Evaluate many sessions in one vectorized model call.

        The batch API behind the high-throughput runtime: one
        scaler→PCA→KMeans pass over the ``(n, n_features)`` matrix
        instead of ``n`` single-row calls.  Row ``i`` of the result is
        identical to ``detect_session(matrix[i], user_agents[i])``, and
        the whole batch is scored against one model snapshot even if a
        retrain lands mid-call.
        """
        _, detector = self.detection_snapshot()
        return detector.evaluate_vectors(np.asarray(matrix), user_agents)

    def escalate_result(
        self, result: DetectionResult, suspicious_globals: Sequence[str]
    ) -> DetectionResult:
        """Apply the Section 8 namespace-probe escalation to a verdict.

        With ``enable_namespace_probe`` set, a payload carrying
        fraud-browser namespace artifacts is escalated to the maximum
        risk factor even when its coarse-grained fingerprint matches the
        claimed user-agent — catching sloppy wrapper builds (AntBrowser)
        whose engine coincidentally matches the spoofed release.
        """
        if self.config.enable_namespace_probe and suspicious_globals:
            return DetectionResult(
                ua_key=result.ua_key,
                predicted_cluster=result.predicted_cluster,
                expected_cluster=result.expected_cluster,
                flagged=True,
                risk_factor=self.config.vendor_mismatch_risk,
                inferred_release=result.inferred_release,
                inferred_distance=result.inferred_distance,
            )
        return result

    def detect_payload(self, payload: FingerprintPayload) -> DetectionResult:
        """Evaluate a wire payload produced by the collection script."""
        result = self.detect_session(payload.vector(), payload.user_agent)
        return self.escalate_result(result, payload.suspicious_globals)

    # ------------------------------------------------------------------
    # drift

    def drift_report(
        self,
        dataset: Dataset,
        check_dates: Optional[Dict[str, date]] = None,
        min_sessions: int = 50,
        check_date: Optional[date] = None,
    ) -> List[DriftRecord]:
        """Evaluate the new releases present in ``dataset`` (Table 6)."""
        self._require_fitted()
        return DriftDetector(self.cluster_model).evaluate_window(
            dataset, check_dates, min_sessions=min_sessions, check_date=check_date
        )

    def retrain_needed(self, records: Sequence[DriftRecord]) -> bool:
        """Whether the drift records trip the Section 6.6 trigger."""
        self._require_fitted()
        return DriftDetector(self.cluster_model).retrain_needed(records)

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: Union[str, Path]) -> str:
        """Persist the trained model to JSON; returns its sha256 digest."""
        self._require_fitted()
        return save_model(self.cluster_model, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BrowserPolygraph":
        """Restore a pipeline saved with :meth:`save`."""
        model = load_model(path)
        pipeline = cls(config=model.config, specs=model.specs)
        pipeline._install_model(model)
        return pipeline

    # ------------------------------------------------------------------

    def _install_model(self, model: ClusterModel) -> None:
        """Atomically swap in a fully-built model, then notify listeners."""
        detector = FraudDetector(model)
        with self._swap_lock:
            self.cluster_model = model
            self._detector = detector
            self.config = model.config
            self.specs = tuple(model.specs)
            self._generation += 1
            generation = self._generation
            listeners = tuple(self._retrain_listeners)
        for callback in listeners:
            callback(generation)

    def _require_fitted(self) -> None:
        if self.cluster_model is None:
            raise RuntimeError("BrowserPolygraph is not fitted; call fit() first")
