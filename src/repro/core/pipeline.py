"""The Browser Polygraph facade.

One object tying the whole system together the way the FinOrg
deployment runs it:

>>> polygraph = BrowserPolygraph()
>>> polygraph.fit(training_dataset)          # offline (Section 6.4)
>>> report = polygraph.detect(live_dataset)  # online (Section 6.5)
>>> records = polygraph.drift_report(new)    # scheduled (Section 6.6)
>>> if polygraph.retrain_needed(records):
...     polygraph.retrain(extended_dataset)
"""

from __future__ import annotations

from datetime import date
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.clustering import ClusterModel
from repro.core.config import PipelineConfig
from repro.core.detection import DetectionReport, DetectionResult, FraudDetector
from repro.core.drift import DriftDetector, DriftRecord
from repro.core.model_store import load_model, save_model
from repro.fingerprint.features import FEATURE_SPECS, FeatureSpec
from repro.fingerprint.script import FingerprintPayload
from repro.traffic.dataset import Dataset

__all__ = ["BrowserPolygraph"]


class BrowserPolygraph:
    """End-to-end coarse-grained fraud detection pipeline."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        specs: Sequence[FeatureSpec] = FEATURE_SPECS,
    ) -> None:
        self.config = config
        self.specs = tuple(specs)
        self.cluster_model: Optional[ClusterModel] = None
        self._detector: Optional[FraudDetector] = None

    # ------------------------------------------------------------------
    # training

    def fit(self, dataset: Dataset, align_rare: bool = True) -> "BrowserPolygraph":
        """Train the clustering model on a FinOrg-shaped dataset."""
        if dataset.n_features != len(self.specs):
            raise ValueError(
                f"dataset has {dataset.n_features} features, "
                f"pipeline expects {len(self.specs)}"
            )
        model = ClusterModel(self.config, specs=self.specs)
        model.fit(dataset.matrix(), list(dataset.ua_keys), align_rare=align_rare)
        self.cluster_model = model
        self._detector = FraudDetector(model)
        return self

    def retrain(self, dataset: Dataset, align_rare: bool = True) -> "BrowserPolygraph":
        """Retrain from scratch on an extended window (drift response)."""
        return self.fit(dataset, align_rare=align_rare)

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.cluster_model is not None

    @property
    def accuracy(self) -> float:
        """Majority-cluster training accuracy (paper: 99.6%)."""
        self._require_fitted()
        return float(self.cluster_model.accuracy_)

    @property
    def cluster_table(self) -> Dict[int, List[str]]:
        """The cluster-to-user-agent table (paper Table 3)."""
        self._require_fitted()
        return {k: list(v) for k, v in self.cluster_model.cluster_table.items()}

    # ------------------------------------------------------------------
    # online detection

    def detect(self, dataset: Dataset) -> DetectionReport:
        """Evaluate a batch of sessions."""
        self._require_fitted()
        return self._detector.evaluate_dataset(dataset)

    def detect_session(
        self, features: Union[np.ndarray, Sequence[int]], user_agent: str
    ) -> DetectionResult:
        """Evaluate a single session (the real-time path)."""
        self._require_fitted()
        return self._detector.evaluate_vector(np.asarray(features), user_agent)

    def detect_payload(self, payload: FingerprintPayload) -> DetectionResult:
        """Evaluate a wire payload produced by the collection script.

        With ``enable_namespace_probe`` set, a payload carrying
        fraud-browser namespace artifacts is escalated to the maximum
        risk factor even when its coarse-grained fingerprint matches the
        claimed user-agent — catching sloppy wrapper builds (AntBrowser)
        whose engine coincidentally matches the spoofed release.
        """
        result = self.detect_session(payload.vector(), payload.user_agent)
        if (
            self.config.enable_namespace_probe
            and payload.suspicious_globals
        ):
            return DetectionResult(
                ua_key=result.ua_key,
                predicted_cluster=result.predicted_cluster,
                expected_cluster=result.expected_cluster,
                flagged=True,
                risk_factor=self.config.vendor_mismatch_risk,
            )
        return result

    # ------------------------------------------------------------------
    # drift

    def drift_report(
        self,
        dataset: Dataset,
        check_dates: Optional[Dict[str, date]] = None,
        min_sessions: int = 50,
    ) -> List[DriftRecord]:
        """Evaluate the new releases present in ``dataset`` (Table 6)."""
        self._require_fitted()
        return DriftDetector(self.cluster_model).evaluate_window(
            dataset, check_dates, min_sessions=min_sessions
        )

    def retrain_needed(self, records: Sequence[DriftRecord]) -> bool:
        """Whether the drift records trip the Section 6.6 trigger."""
        self._require_fitted()
        return DriftDetector(self.cluster_model).retrain_needed(records)

    # ------------------------------------------------------------------
    # persistence

    def save(self, path: Union[str, Path]) -> None:
        """Persist the trained model to JSON."""
        self._require_fitted()
        save_model(self.cluster_model, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BrowserPolygraph":
        """Restore a pipeline saved with :meth:`save`."""
        model = load_model(path)
        pipeline = cls(config=model.config, specs=model.specs)
        pipeline.cluster_model = model
        pipeline._detector = FraudDetector(model)
        return pipeline

    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.cluster_model is None:
            raise RuntimeError("BrowserPolygraph is not fitted; call fit() first")
