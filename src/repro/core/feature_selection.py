"""Data pre-processing: from 513 candidates to the final 28 features.

Section 6.3 of the paper combines three filters:

1. **Constant features** — 186 candidates showed a single value across
   the real-traffic sample (most of the BrowserPrint time-based set had
   stopped tracking modern browsers) and were dropped.
2. **Configuration sensitivity** — manual lab analysis showed some
   features could be zeroed or reshaped wholesale by user settings
   (disabling Service Workers or WebRTC) or extensions; the *most
   affected* were excluded.  :func:`config_sensitivity` automates that
   probe: apply every known benign perturbation (plus Brave's shields)
   to reference environments and measure each feature's worst-case
   relative change.
3. **Discriminative power** — the surviving deviation features are
   ranked by standard deviation across the traffic and the top 22 kept;
   time-based features are kept only when both of their values enjoy
   material support (the six Table 8 features split engine families;
   the rest differ only on near-extinct ancient releases).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.browsers.configs import BENIGN_PERTURBATIONS, Perturbation
from repro.browsers.derivatives import brave_environment
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import FeatureSpec
from repro.jsengine.evolution import (
    CONFIG_SENSITIVE_INTERFACES,
    EvolutionModel,
    default_model,
)

__all__ = [
    "FeatureSelectionReport",
    "config_sensitivity",
    "select_features",
]

# Reference releases for the lab sensitivity probe: one modern build per
# engine family (the paper probed Chrome and Firefox and their
# derivatives).
_PROBE_RELEASES: Tuple[Tuple[Vendor, int], ...] = (
    (Vendor.CHROME, 112),
    (Vendor.FIREFOX, 112),
)

_DEFAULT_SENSITIVITY_THRESHOLD = 0.30
_DEFAULT_MIN_MINORITY_SUPPORT = 0.02


@dataclass
class FeatureSelectionReport:
    """Full audit trail of the Section 6.3 reduction."""

    selected: List[FeatureSpec]
    selected_indices: List[int]
    dropped_constant: List[str] = field(default_factory=list)
    dropped_config_sensitive: List[str] = field(default_factory=list)
    dropped_low_deviation: List[str] = field(default_factory=list)
    dropped_low_support_time: List[str] = field(default_factory=list)
    deviation_ranking: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def n_selected(self) -> int:
        """Size of the final feature set (28 in the paper)."""
        return len(self.selected)


def config_sensitivity(
    specs: Sequence[FeatureSpec],
    model: Optional[EvolutionModel] = None,
    perturbations: Sequence[Perturbation] = BENIGN_PERTURBATIONS,
) -> Dict[str, float]:
    """Worst-case relative change of each feature under benign configs.

    Returns ``{spec.key(): max relative change}`` across all probe
    releases and perturbations (including Brave shields).  A value of
    1.0 means some configuration can zero the feature entirely.
    """
    model = model if model is not None else default_model()
    collector = FingerprintCollector(specs)
    worst = {spec.key(): 0.0 for spec in specs}
    for vendor, version in _PROBE_RELEASES:
        base_env = BrowserProfile(vendor, version).environment(model)
        base = collector.collect(base_env).astype(float)
        variants = [
            perturbation.apply(base_env)
            for perturbation in perturbations
            if perturbation.applies_to(base_env.engine, version)
        ]
        if vendor is Vendor.CHROME:
            brave = brave_environment(version)
            brave.model = model
            variants.append(brave)
        for variant_env in variants:
            variant = collector.collect(variant_env).astype(float)
            with np.errstate(invalid="ignore", divide="ignore"):
                relative = np.abs(variant - base) / np.maximum(np.abs(base), 1.0)
            for spec, change in zip(specs, relative):
                if change > worst[spec.key()]:
                    worst[spec.key()] = float(change)
    return worst


def select_features(
    matrix: np.ndarray,
    specs: Sequence[FeatureSpec],
    n_deviation: int = 22,
    sensitivity_threshold: float = _DEFAULT_SENSITIVITY_THRESHOLD,
    min_minority_support: float = _DEFAULT_MIN_MINORITY_SUPPORT,
    model: Optional[EvolutionModel] = None,
    manually_excluded: Sequence[str] = CONFIG_SENSITIVE_INTERFACES,
) -> FeatureSelectionReport:
    """Run the full Section 6.3 reduction on candidate-space traffic.

    ``matrix`` holds the collected candidate features (columns aligned
    with ``specs``); the result lists the selected specs in canonical
    order (deviation features by decreasing traffic deviation, then the
    surviving time-based features).

    ``manually_excluded`` reproduces the paper's manual review: features
    the lab probe cannot prove unstable but that manual analysis tied to
    extensions, devices, or user settings (``Navigator`` reshaped by
    plugins, speech/gamepad APIs gated on hardware, and so on).
    """
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2 or data.shape[1] != len(specs):
        raise ValueError("matrix columns must align with specs")

    excluded_set = set(manually_excluded)
    report = FeatureSelectionReport(selected=[], selected_indices=[])
    stds = data.std(axis=0)
    sensitivity = config_sensitivity(specs, model=model)

    deviation_candidates: List[Tuple[int, FeatureSpec, float]] = []
    for idx, spec in enumerate(specs):
        column = data[:, idx]
        if stds[idx] == 0.0:
            report.dropped_constant.append(spec.key())
            continue
        if spec.kind == "time":
            minority = min(float((column > 0).mean()), float((column <= 0).mean()))
            if minority < min_minority_support:
                report.dropped_low_support_time.append(spec.key())
            else:
                report.selected.append(spec)
                report.selected_indices.append(idx)
            continue
        if (
            sensitivity.get(spec.key(), 0.0) > sensitivity_threshold
            or spec.interface in excluded_set
        ):
            report.dropped_config_sensitive.append(spec.key())
            continue
        deviation_candidates.append((idx, spec, float(stds[idx])))

    deviation_candidates.sort(key=lambda item: -item[2])
    report.deviation_ranking = [
        (spec.interface, std) for _, spec, std in deviation_candidates
    ]
    kept = deviation_candidates[:n_deviation]
    for idx, spec, _ in deviation_candidates[n_deviation:]:
        report.dropped_low_deviation.append(spec.key())

    # Canonical order: deviation features first (by rank), then time.
    time_selected = list(
        zip(report.selected_indices, report.selected)
    )
    report.selected = [spec for _, spec, _ in kept] + [s for _, s in time_selected]
    report.selected_indices = [idx for idx, _, _ in kept] + [
        i for i, _ in time_selected
    ]
    return report
