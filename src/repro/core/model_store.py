"""JSON persistence for trained Browser Polygraph models.

The deployable artifact is small — scaler moments, PCA components, 11
centroids, and the cluster table — so a single human-inspectable JSON
document stores everything the online detector needs.  (The Isolation
Forest is a training-time tool and is intentionally not persisted.)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.clustering import ClusterModel
from repro.core.config import PipelineConfig
from repro.ml.kmeans import KMeans
from repro.ml.pca import PCA
from repro.ml.scaler import StandardScaler

__all__ = ["load_model", "save_model", "stored_digest"]

_FORMAT_VERSION = 1


def _content_digest(document: dict) -> str:
    """sha256 over the canonical serialization of ``document``.

    The digest covers the exact ``json.dumps(..., indent=2)`` text the
    file stores (minus the ``sha256`` field itself), so any bit flip,
    truncation-and-repair, or hand edit of the persisted model changes
    the digest and :func:`load_model` fails loudly instead of serving
    verdicts from corrupt centroids.
    """
    payload = json.dumps(document, indent=2)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def stored_digest(path: Union[str, Path]) -> Optional[str]:
    """The sha256 digest recorded inside a saved model file."""
    document = json.loads(Path(path).read_text())
    return document.get("sha256")


def save_model(model: ClusterModel, path: Union[str, Path]) -> str:
    """Serialize a fitted :class:`ClusterModel` to JSON.

    Returns the sha256 content digest recorded in the file (callers
    such as the model registry store it independently, so a swapped
    file is detected even when it is internally self-consistent).
    """
    if model.kmeans is None or model.pca is None or model.preprocessor.scaler is None:
        raise ValueError("cannot save an unfitted ClusterModel")
    scaler = model.preprocessor.scaler
    document = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(model.config),
        "scaler": {
            "columns": scaler.columns,
            "mean": scaler.mean_.tolist(),
            "scale": scaler.scale_.tolist(),
            "n_features": scaler.n_features_in_,
        },
        "pca": {
            "components": model.pca.components_.tolist(),
            "mean": model.pca.mean_.tolist(),
            "explained_variance_ratio": model.pca.explained_variance_ratio_.tolist(),
        },
        "kmeans": {
            "centers": model.kmeans.cluster_centers_.tolist(),
            "inertia": model.kmeans.inertia_,
        },
        "ua_to_cluster": dict(sorted(model.ua_to_cluster.items())),
        "accuracy": model.accuracy_,
        "n_outliers": model.n_outliers_,
        "aligned_uas": list(model.aligned_uas_),
        "feature_names": [spec.name for spec in model.specs],
    }
    digest = _content_digest(document)
    document["sha256"] = digest
    Path(path).write_text(json.dumps(document, indent=2))
    return digest


def load_model(path: Union[str, Path]) -> ClusterModel:
    """Restore a :class:`ClusterModel` saved with :func:`save_model`.

    Raises ``ValueError`` when the file's recorded sha256 digest does
    not match its content (truncated, bit-rotted, or hand-edited model
    files must never load).  Files written before digests existed
    (no ``sha256`` field) still load.
    """
    document = json.loads(Path(path).read_text())
    if document.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format: {document.get('format_version')!r}"
        )
    recorded = document.pop("sha256", None)
    if recorded is not None:
        actual = _content_digest(document)
        if actual != recorded:
            raise ValueError(
                f"model file {path} digest mismatch: recorded {recorded[:12]}..., "
                f"content hashes to {actual[:12]}... (corrupt or hand-edited)"
            )
    config_fields = dict(document["config"])
    config = PipelineConfig(**config_fields)
    model = ClusterModel(config)

    scaler_doc = document["scaler"]
    scaler = StandardScaler(columns=scaler_doc["columns"])
    scaler.mean_ = np.asarray(scaler_doc["mean"], dtype=float)
    scaler.scale_ = np.asarray(scaler_doc["scale"], dtype=float)
    scaler.n_features_in_ = int(scaler_doc["n_features"])
    model.preprocessor.scaler = scaler

    pca = PCA(n_components=len(document["pca"]["components"]))
    pca.components_ = np.asarray(document["pca"]["components"], dtype=float)
    pca.mean_ = np.asarray(document["pca"]["mean"], dtype=float)
    pca.explained_variance_ratio_ = np.asarray(
        document["pca"]["explained_variance_ratio"], dtype=float
    )
    pca.explained_variance_ = pca.explained_variance_ratio_.copy()
    pca.n_features_in_ = scaler.n_features_in_
    model.pca = pca

    centers = np.asarray(document["kmeans"]["centers"], dtype=float)
    kmeans = KMeans(n_clusters=centers.shape[0])
    kmeans.cluster_centers_ = centers
    kmeans.inertia_ = document["kmeans"]["inertia"]
    model.kmeans = kmeans

    model.ua_to_cluster = {
        str(k): int(v) for k, v in document["ua_to_cluster"].items()
    }
    model.accuracy_ = document.get("accuracy")
    model.n_outliers_ = document.get("n_outliers")
    model.aligned_uas_ = list(document.get("aligned_uas", []))
    model._rebuild_table()
    return model
