"""Pipeline hyper-parameters.

Defaults pin the paper's deployed configuration: 28 features, 7 PCA
components, k=11 clusters, an Isolation Forest contamination of 0.002%
(the threshold that removed 172 of 205k rows), a 100-row support floor
for trusting a user-agent's learned cluster, a 98% drift-accuracy
threshold, and Algorithm 1's risk constants (vendor mismatch = 20,
version divisor = 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.fingerprint.features import deviation_feature_indices

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Every tunable of the Browser Polygraph pipeline."""

    n_pca_components: int = 7
    n_clusters: int = 11
    kmeans_n_init: int = 6
    random_state: int = 1337
    outlier_contamination: float = 2e-5
    outlier_trees: int = 100
    scale_columns: Optional[List[int]] = field(
        default_factory=deviation_feature_indices
    )
    min_ua_support: int = 100
    drift_accuracy_threshold: float = 0.98
    vendor_mismatch_risk: int = 20
    version_divisor: int = 4
    # What to do with user-agents outside the trained table: "ignore"
    # (paper behaviour: out of scope, not flagged), "flag", or "infer"
    # (score against the nearest known release of the same vendor and
    # engine, with provenance on the result — the interim coverage mode
    # that bridges the blind window between a release shipping and the
    # next retrain absorbing it).
    unknown_ua_policy: str = "ignore"
    # Section 8 extension: escalate sessions whose collection payload
    # carries fraud-browser namespace artifacts (ANTBROWSER and friends)
    # to maximum risk, independent of the clustering verdict.
    enable_namespace_probe: bool = False

    def __post_init__(self) -> None:
        if self.n_pca_components < 1:
            raise ValueError("n_pca_components must be >= 1")
        if self.n_clusters < 2:
            raise ValueError("n_clusters must be >= 2")
        if not 0.0 < self.outlier_contamination < 0.5:
            raise ValueError("outlier_contamination must lie in (0, 0.5)")
        if self.version_divisor < 1:
            raise ValueError("version_divisor must be >= 1")
        if self.unknown_ua_policy not in ("ignore", "flag", "infer"):
            raise ValueError(
                "unknown_ua_policy must be 'ignore', 'flag' or 'infer'"
            )

    def with_overrides(self, **kwargs) -> "PipelineConfig":
        """Copy with selected fields replaced (sensitivity sweeps)."""
        return replace(self, **kwargs)
