"""Durable rollout state.

A rollout is a days-long process at FinOrg scale; the process running
it will be restarted, redeployed, and OOM-killed before it finishes.
:class:`RolloutState` is everything needed to resume exactly where the
previous process stopped: which candidate against which baseline, the
current stage, and — critically — the hashing ``salt``, so the sticky
per-session traffic split is bit-identical across restarts.

The state file is written atomically (temp file + ``os.replace``) on
every transition, so a crash mid-write leaves the previous state
intact rather than a truncated JSON document.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

__all__ = [
    "ABORTED",
    "CANARY",
    "IN_FLIGHT",
    "LIVE",
    "ROLLED_BACK",
    "SHADOW",
    "RolloutState",
    "load_state",
    "save_state",
]

SHADOW = "shadow"
CANARY = "canary"
LIVE = "live"
ROLLED_BACK = "rolled_back"
ABORTED = "aborted"

IN_FLIGHT = (SHADOW, CANARY)


@dataclass
class RolloutState:
    """One rollout's durable record.

    ``stage_index`` is ``-1`` during shadow (candidate serves nothing)
    and indexes into ``stages`` during the canary ramp.
    """

    candidate_version: int
    baseline_version: int
    stages: Tuple[float, ...]
    shadow_sample_rate: float
    salt: str
    status: str = SHADOW
    stage_index: int = -1
    started_at: float = 0.0
    stage_started_at: float = 0.0
    breach: Optional[dict] = None
    report: dict = field(default_factory=dict)
    history: List[dict] = field(default_factory=list)

    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> bool:
        """Whether the rollout is still walking toward live."""
        return self.status in IN_FLIGHT

    @property
    def stage_fraction(self) -> float:
        """Share of real traffic the candidate currently serves."""
        if self.status == LIVE:
            return 1.0
        if self.status != CANARY or self.stage_index < 0:
            return 0.0
        return float(self.stages[self.stage_index])

    def record(self, event: str, at: float) -> None:
        """Append one transition to the audit trail."""
        self.history.append(
            {"event": event, "at": at, "stage_index": self.stage_index}
        )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        document = asdict(self)
        document["stages"] = list(self.stages)
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "RolloutState":
        document = dict(document)
        document["stages"] = tuple(float(s) for s in document["stages"])
        return cls(**document)


def save_state(state: RolloutState, path: Union[str, Path]) -> None:
    """Atomically persist ``state`` to ``path``."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(state.to_dict(), indent=2))
    os.replace(tmp, path)


def load_state(path: Union[str, Path]) -> Optional[RolloutState]:
    """Load a persisted state, or ``None`` when no file exists."""
    path = Path(path)
    if not path.exists():
        return None
    return RolloutState.from_dict(json.loads(path.read_text()))
