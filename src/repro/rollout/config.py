"""Configuration of the safe-rollout subsystem.

Two knobs-objects, deliberately separate:

* :class:`RolloutConfig` shapes the *ramp* — how much traffic the
  candidate shadows, and through which canary fractions real traffic
  walks toward it;
* :class:`GuardrailConfig` shapes the *abort conditions* — the limits
  a candidate must stay inside at every stage, or the manager rolls
  the fleet back to the prior model automatically.

Defaults follow the deployment story of the paper's Section 6.6 loop:
retrains are routine (every major browser release), so the ramp must be
cheap enough to run every time, and the guardrails tight enough that a
mis-trained model never reaches a majority of FinOrg traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["GuardrailConfig", "RolloutConfig", "RolloutError"]


class RolloutError(RuntimeError):
    """An invalid rollout operation (wrong state, incomplete stage)."""


@dataclass(frozen=True)
class RolloutConfig:
    """Shape of the shadow + canary ramp.

    Parameters
    ----------
    stages:
        Increasing canary fractions of real traffic served by the
        candidate; the ramp finishes with promotion to live after the
        last stage holds.
    shadow_sample_rate:
        Share of *live-arm* traffic mirrored to the candidate for
        disagreement accounting (off the latency-critical path).
    min_stage_verdicts:
        Candidate verdicts a canary stage must serve before it may
        advance (prevents promoting through an idle stage).
    shadow_workers / shadow_queue_capacity:
        Sizing of the shadow scorer's private worker pool; mirrored
        requests beyond the queue bound are shed silently (shadowing
        must never apply backpressure to real traffic).
    """

    stages: Tuple[float, ...] = (0.01, 0.05, 0.25, 1.0)
    shadow_sample_rate: float = 0.25
    min_stage_verdicts: int = 500
    shadow_workers: int = 1
    shadow_queue_capacity: int = 2048

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("stages must not be empty")
        previous = 0.0
        for fraction in self.stages:
            if not previous < fraction <= 1.0:
                raise ValueError(
                    "stages must be strictly increasing fractions in (0, 1], "
                    f"got {self.stages}"
                )
            previous = fraction
        if not 0.0 < self.shadow_sample_rate <= 1.0:
            raise ValueError("shadow_sample_rate must lie in (0, 1]")
        if self.min_stage_verdicts < 1:
            raise ValueError("min_stage_verdicts must be >= 1")
        if self.shadow_workers < 1:
            raise ValueError("shadow_workers must be >= 1")
        if self.shadow_queue_capacity < 1:
            raise ValueError("shadow_queue_capacity must be >= 1")


@dataclass(frozen=True)
class GuardrailConfig:
    """Limits evaluated at every stage; any breach triggers rollback.

    Parameters
    ----------
    max_disagreement_rate:
        Ceiling on the candidate-vs-live verdict-mismatch rate over the
        shadow comparisons.
    max_flag_rate_delta:
        Ceiling on ``|candidate flag rate - live flag rate|`` over the
        same comparisons — a candidate that silently flags (or clears)
        a few extra percent of traffic is exactly the mis-promotion
        this subsystem exists to stop.
    max_latency_p99_ms:
        Ceiling on the p99 of the candidate's batch scoring stage.
    min_comparisons:
        Disagreement guardrails stay quiet until this many shadow
        comparisons have accumulated (no verdicts, no verdict).
    """

    max_disagreement_rate: float = 0.02
    max_flag_rate_delta: float = 0.01
    max_latency_p99_ms: float = 250.0
    min_comparisons: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_disagreement_rate <= 1.0:
            raise ValueError("max_disagreement_rate must lie in [0, 1]")
        if not 0.0 <= self.max_flag_rate_delta <= 1.0:
            raise ValueError("max_flag_rate_delta must lie in [0, 1]")
        if self.max_latency_p99_ms <= 0:
            raise ValueError("max_latency_p99_ms must be positive")
        if self.min_comparisons < 1:
            raise ValueError("min_comparisons must be >= 1")
