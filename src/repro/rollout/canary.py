"""Canary traffic assignment and guardrail evaluation.

Assignment is *sticky and deterministic*: a session id hashes (with the
rollout's persisted salt) to a bucket in ``[0, 1)``, and the candidate
serves the sessions whose bucket falls below the current stage
fraction.  Because stages only grow, a session assigned to the
candidate at 1% is still on the candidate at 25% — users never flap
between models mid-rollout — and because the salt survives restarts,
the split is bit-identical after a crash.

The shadow sample is carved from the *top* of the same bucket space
(``[1 - sample_rate, 1)``), so it covers only live-arm sessions and
costs one hash per request, shared with canary assignment.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import asdict, dataclass
from typing import Optional

from repro.rollout.config import GuardrailConfig, RolloutConfig
from repro.rollout.shadow import DisagreementReport
from repro.rollout.state import CANARY, SHADOW, RolloutState
from repro.runtime.stats import RuntimeStats

__all__ = ["CanaryController", "GuardrailBreach", "session_bucket"]

_BUCKET_SCALE = float(2**64)


def session_bucket(salt: str, session_id: str) -> float:
    """Deterministic hash of a session id into ``[0, 1)``."""
    digest = hashlib.sha256(f"{salt}:{session_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / _BUCKET_SCALE


@dataclass(frozen=True)
class GuardrailBreach:
    """One guardrail the candidate failed (grounds for rollback)."""

    name: str
    observed: float
    limit: float
    detail: str

    def to_dict(self) -> dict:
        return asdict(self)


class CanaryController:
    """Routes sessions between arms and judges the candidate.

    Owns the per-stage bookkeeping (candidate verdicts served this
    stage) and the guardrail verdict; the manager owns the transitions.
    """

    def __init__(
        self,
        state: RolloutState,
        config: RolloutConfig,
        guardrails: GuardrailConfig,
        report: DisagreementReport,
        stats: Optional[RuntimeStats] = None,
    ) -> None:
        self.state = state
        self.config = config
        self.guardrails = guardrails
        self.report = report
        self.stats = stats
        self._lock = threading.Lock()
        self._stage_verdicts = 0

    # ------------------------------------------------------------------
    # routing

    def route(self, session_id: str) -> tuple:
        """``(candidate, mirror)`` for one session.

        ``candidate`` — serve this session from the candidate model;
        ``mirror`` — it stays on live, and its verdict should be
        mirrored to the shadow scorer.
        """
        state = self.state
        if not state.in_flight:
            return False, False
        bucket = session_bucket(state.salt, session_id)
        candidate = bucket < state.stage_fraction
        mirror = (not candidate) and bucket >= 1.0 - state.shadow_sample_rate
        return candidate, mirror

    # ------------------------------------------------------------------
    # stage bookkeeping

    def note_candidate_verdicts(self, n: int) -> None:
        """Count candidate verdicts served in the current stage."""
        with self._lock:
            self._stage_verdicts += int(n)

    @property
    def stage_verdicts(self) -> int:
        with self._lock:
            return self._stage_verdicts

    def reset_stage(self) -> None:
        """Zero the per-stage counters (called on each transition)."""
        with self._lock:
            self._stage_verdicts = 0

    def stage_complete(self) -> bool:
        """Whether the current stage has seen enough evidence to advance."""
        state = self.state
        if state.status == SHADOW:
            return self.report.comparisons >= self.guardrails.min_comparisons
        if state.status == CANARY:
            return self.stage_verdicts >= self.config.min_stage_verdicts
        return False

    # ------------------------------------------------------------------
    # guardrails

    def evaluate(self) -> Optional[GuardrailBreach]:
        """The guardrail verdict right now (``None`` means healthy)."""
        g = self.guardrails
        report = self.report
        if report.comparisons >= g.min_comparisons:
            rate = report.disagreement_rate
            if rate > g.max_disagreement_rate:
                return GuardrailBreach(
                    name="disagreement_rate",
                    observed=rate,
                    limit=g.max_disagreement_rate,
                    detail=(
                        f"{report.mismatches}/{report.comparisons} shadow "
                        f"comparisons disagreed"
                    ),
                )
            delta = report.flag_rate_delta
            if abs(delta) > g.max_flag_rate_delta:
                return GuardrailBreach(
                    name="flag_rate_delta",
                    observed=delta,
                    limit=g.max_flag_rate_delta,
                    detail=(
                        f"candidate flag rate {report.candidate_flag_rate:.4f} "
                        f"vs live {report.live_flag_rate:.4f}"
                    ),
                )
        if self.stats is not None:
            p99 = self.stats.stage_percentile("candidate_model", 99)
            if p99 > g.max_latency_p99_ms:
                return GuardrailBreach(
                    name="latency_p99_ms",
                    observed=p99,
                    limit=g.max_latency_p99_ms,
                    detail="candidate batch-scoring p99 over budget",
                )
        return None
