"""Safe model rollout: shadow scoring, staged canary, automatic rollback.

The bridge between the retraining loop (which produces candidate
models) and the online scoring runtime (which must never regress):
candidates shadow live traffic, ramp through canary stages with sticky
per-session assignment, and either reach live or are rolled back the
moment a guardrail breaks.
"""

from repro.rollout.canary import CanaryController, GuardrailBreach, session_bucket
from repro.rollout.config import GuardrailConfig, RolloutConfig, RolloutError
from repro.rollout.manager import RolloutManager
from repro.rollout.shadow import DisagreementReport, ShadowScorer
from repro.rollout.state import (
    ABORTED,
    CANARY,
    IN_FLIGHT,
    LIVE,
    ROLLED_BACK,
    SHADOW,
    RolloutState,
    load_state,
    save_state,
)

__all__ = [
    "ABORTED",
    "CANARY",
    "CanaryController",
    "DisagreementReport",
    "GuardrailBreach",
    "GuardrailConfig",
    "IN_FLIGHT",
    "LIVE",
    "ROLLED_BACK",
    "RolloutConfig",
    "RolloutError",
    "RolloutManager",
    "RolloutState",
    "SHADOW",
    "ShadowScorer",
    "load_state",
    "save_state",
    "session_bucket",
]
