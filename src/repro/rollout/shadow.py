"""Shadow scoring: the candidate sees traffic, users never see it.

A configurable sample of live-arm requests is mirrored to the candidate
model *after* the live verdict is decided, on a private
:class:`~repro.runtime.pool.WorkerPool` — the mirror path can fall
arbitrarily far behind (or shed outright) without ever adding a
microsecond to the latency-critical path.

Every comparison lands in a :class:`DisagreementReport`: the overall
verdict-mismatch rate, the same broken down per user-agent release
(drift is per-release, so a candidate that mis-scores exactly one new
Firefox build must be visible as such), the flag-rate delta, and the
risk-factor distribution shift between the two models.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import BrowserPolygraph
from repro.runtime.pool import WorkerPool
from repro.runtime.stats import RuntimeStats

__all__ = ["DisagreementReport", "ShadowScorer"]

# Risk-factor histogram key for sessions the model did not flag.
_CLEAN = -1


class DisagreementReport:
    """Thread-safe accumulator of candidate-vs-live comparisons."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.comparisons = 0
        self.mismatches = 0
        self.live_flagged = 0
        self.candidate_flagged = 0
        self.shed = 0
        self._per_ua: Dict[str, List[int]] = {}  # ua_key -> [comparisons, mismatches]
        self._live_risk: Counter = Counter()
        self._candidate_risk: Counter = Counter()

    # ------------------------------------------------------------------

    def record(
        self,
        ua_key: str,
        live_flagged: bool,
        live_risk: Optional[int],
        candidate_flagged: bool,
        candidate_risk: Optional[int],
    ) -> None:
        """Fold one mirrored comparison into the report."""
        mismatch = (live_flagged, live_risk) != (candidate_flagged, candidate_risk)
        with self._lock:
            self.comparisons += 1
            if mismatch:
                self.mismatches += 1
            if live_flagged:
                self.live_flagged += 1
            if candidate_flagged:
                self.candidate_flagged += 1
            entry = self._per_ua.setdefault(ua_key, [0, 0])
            entry[0] += 1
            if mismatch:
                entry[1] += 1
            self._live_risk[live_risk if live_risk is not None else _CLEAN] += 1
            self._candidate_risk[
                candidate_risk if candidate_risk is not None else _CLEAN
            ] += 1

    def note_shed(self) -> None:
        """Count a mirrored request the shadow pool refused (full queue)."""
        with self._lock:
            self.shed += 1

    # ------------------------------------------------------------------

    @property
    def disagreement_rate(self) -> float:
        """Share of comparisons where the verdicts differed."""
        with self._lock:
            return self.mismatches / self.comparisons if self.comparisons else 0.0

    @property
    def live_flag_rate(self) -> float:
        with self._lock:
            return self.live_flagged / self.comparisons if self.comparisons else 0.0

    @property
    def candidate_flag_rate(self) -> float:
        with self._lock:
            return (
                self.candidate_flagged / self.comparisons
                if self.comparisons
                else 0.0
            )

    @property
    def flag_rate_delta(self) -> float:
        """Candidate flag rate minus live flag rate (signed)."""
        with self._lock:
            if not self.comparisons:
                return 0.0
            return (self.candidate_flagged - self.live_flagged) / self.comparisons

    @property
    def risk_shift(self) -> float:
        """Total-variation distance between the risk-factor distributions."""
        with self._lock:
            n = self.comparisons
            if not n:
                return 0.0
            keys = set(self._live_risk) | set(self._candidate_risk)
            return 0.5 * sum(
                abs(self._live_risk.get(k, 0) - self._candidate_risk.get(k, 0)) / n
                for k in keys
            )

    def per_ua(self) -> Dict[str, dict]:
        """Per-release breakdown: comparisons, mismatches, rate."""
        with self._lock:
            return {
                ua: {
                    "comparisons": counts[0],
                    "mismatches": counts[1],
                    "rate": counts[1] / counts[0] if counts[0] else 0.0,
                }
                for ua, counts in sorted(self._per_ua.items())
            }

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable point-in-time view (persisted with the state)."""
        with self._lock:
            per_ua = {ua: list(counts) for ua, counts in self._per_ua.items()}
            live_risk = {str(k): v for k, v in self._live_risk.items()}
            candidate_risk = {str(k): v for k, v in self._candidate_risk.items()}
            comparisons = self.comparisons
            mismatches = self.mismatches
            live_flagged = self.live_flagged
            candidate_flagged = self.candidate_flagged
            shed = self.shed
        return {
            "comparisons": comparisons,
            "mismatches": mismatches,
            "live_flagged": live_flagged,
            "candidate_flagged": candidate_flagged,
            "shed": shed,
            "per_ua": per_ua,
            "live_risk": live_risk,
            "candidate_risk": candidate_risk,
        }

    @classmethod
    def restore(cls, snapshot: Optional[dict]) -> "DisagreementReport":
        """Rebuild a report from :meth:`snapshot` (empty when ``None``)."""
        report = cls()
        if not snapshot:
            return report
        report.comparisons = int(snapshot.get("comparisons", 0))
        report.mismatches = int(snapshot.get("mismatches", 0))
        report.live_flagged = int(snapshot.get("live_flagged", 0))
        report.candidate_flagged = int(snapshot.get("candidate_flagged", 0))
        report.shed = int(snapshot.get("shed", 0))
        report._per_ua = {
            ua: list(map(int, counts))
            for ua, counts in snapshot.get("per_ua", {}).items()
        }
        report._live_risk = Counter(
            {int(k): int(v) for k, v in snapshot.get("live_risk", {}).items()}
        )
        report._candidate_risk = Counter(
            {int(k): int(v) for k, v in snapshot.get("candidate_risk", {}).items()}
        )
        return report


class ShadowScorer:
    """Scores mirrored traffic against the candidate, asynchronously.

    ``mirror`` enqueues ``(values, ua_key, live verdict)`` and returns
    immediately; a private worker pool runs the candidate model and
    folds the comparison into ``report``.  ``on_comparison`` (the
    rollout manager's guardrail check) fires after each comparison.
    """

    def __init__(
        self,
        candidate: BrowserPolygraph,
        report: DisagreementReport,
        stats: Optional[RuntimeStats] = None,
        n_workers: int = 1,
        queue_capacity: int = 2048,
        on_comparison: Optional[Callable[[], None]] = None,
    ) -> None:
        if not candidate.is_fitted:
            raise ValueError("ShadowScorer requires a fitted candidate")
        # One snapshot for the whole shadow run: a candidate is immutable
        # while it is under evaluation.
        _, self._detector = candidate.detection_snapshot()
        self.report = report
        self.stats = stats if stats is not None else RuntimeStats()
        self.on_comparison = on_comparison
        self._accepting = True
        self._submitted = 0
        self._compared = 0
        self._count_lock = threading.Lock()
        self.pool = WorkerPool(
            handler=self._compare,
            n_workers=n_workers,
            queue_capacity=queue_capacity,
            stats=self.stats,
        )

    # ------------------------------------------------------------------

    def start(self) -> "ShadowScorer":
        self.pool.start()
        return self

    def stop(self) -> None:
        """Stop accepting mirrors (cheap; callable from any thread)."""
        self._accepting = False

    def shutdown(self, drain: bool = True) -> None:
        """Stop and join the shadow workers."""
        self._accepting = False
        self.pool.shutdown(drain=drain)

    # ------------------------------------------------------------------

    def mirror(
        self,
        values: Tuple[int, ...],
        ua_key: str,
        live_flagged: bool,
        live_risk: Optional[int],
    ) -> bool:
        """Enqueue one live-arm verdict for candidate comparison."""
        if not self._accepting:
            return False
        if not self.pool.submit((values, ua_key, live_flagged, live_risk)):
            self.report.note_shed()
            return False
        with self._count_lock:
            self._submitted += 1
        return True

    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for every accepted mirror to be compared (tests, shutdown)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._count_lock:
                if self._compared >= self._submitted:
                    return True
            time.sleep(0.002)
        return False

    # ------------------------------------------------------------------

    def _compare(self, item: tuple) -> None:
        values, ua_key, live_flagged, live_risk = item
        started = time.perf_counter()
        result = self._detector.evaluate_vectors(
            np.asarray([values], dtype=float), [ua_key]
        )[0]
        self.stats.observe_stage(
            "shadow", (time.perf_counter() - started) * 1000.0
        )
        self.report.record(
            ua_key, live_flagged, live_risk, result.flagged, result.risk_factor
        )
        with self._count_lock:
            self._compared += 1
        if self.on_comparison is not None:
            self.on_comparison()
