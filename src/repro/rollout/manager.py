"""The rollout manager: shadow → canary ramp → live, or rollback.

:class:`RolloutManager` walks a candidate model from the registry to
production through the stages the config prescribes::

    stage -1  SHADOW   candidate serves 0%; a sample of live traffic is
                       mirrored to it and disagreements accumulate
    stage 0+  CANARY   candidate serves stages[i] of real traffic,
                       sticky per-session; shadow keeps watching the
                       live arm
    promote   LIVE     candidate installed into the serving pipeline
                       (generation bump → verdict-cache invalidation),
                       registry entry marked live

Guardrails are evaluated on every shadow comparison and every candidate
batch; any breach triggers an automatic :meth:`rollback` — traffic
routes back to the prior model instantly, the verdict cache is
invalidated so no candidate verdict survives, and the registry entry is
marked rolled back.  Every transition persists :class:`RolloutState`
atomically, so a restarted process resumes mid-ramp with the same
sticky split (same salt, same stage).
"""

from __future__ import annotations

import secrets
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.core.pipeline import BrowserPolygraph
from repro.rollout.canary import CanaryController, GuardrailBreach
from repro.rollout.config import GuardrailConfig, RolloutConfig, RolloutError
from repro.rollout.shadow import DisagreementReport, ShadowScorer
from repro.rollout.state import (
    ABORTED,
    CANARY,
    LIVE,
    ROLLED_BACK,
    SHADOW,
    RolloutState,
    load_state,
    save_state,
)

__all__ = ["RolloutManager"]


class RolloutManager:
    """Drives one candidate through shadow and canary to live.

    Parameters
    ----------
    registry:
        The :class:`~repro.core.retraining.ModelRegistry` holding the
        baseline and the candidate.
    runtime:
        Optional :class:`~repro.runtime.service.RuntimeScoringService`
        to attach to.  Without one (the offline CLI), the manager still
        walks the persisted state machine; the serving process picks the
        outcome up through the registry and :meth:`resume`.
    state_path:
        Where :class:`RolloutState` persists; defaults to
        ``<registry root>/rollout.json``.
    """

    def __init__(
        self,
        registry,
        runtime=None,
        config: Optional[RolloutConfig] = None,
        guardrails: Optional[GuardrailConfig] = None,
        state_path: Optional[Union[str, Path]] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.registry = registry
        self.runtime = runtime
        self.config = config if config is not None else RolloutConfig()
        self.guardrails = guardrails if guardrails is not None else GuardrailConfig()
        self.state_path = (
            Path(state_path)
            if state_path is not None
            else Path(registry.root) / "rollout.json"
        )
        self._clock = clock
        self._lock = threading.RLock()
        self.state: Optional[RolloutState] = None
        self.report: Optional[DisagreementReport] = None
        self.candidate: Optional[BrowserPolygraph] = None
        self.controller: Optional[CanaryController] = None
        self._candidate_detector = None
        self._shadow: Optional[ShadowScorer] = None
        self._on_complete: Optional[Callable[[], None]] = None
        self._on_rollback: Optional[Callable[[Optional[GuardrailBreach]], None]] = None

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def in_flight(self) -> bool:
        """Whether a rollout is currently between start and an outcome."""
        state = self.state
        return state is not None and state.in_flight

    def begin(
        self,
        candidate: BrowserPolygraph,
        candidate_version: int,
        baseline_version: Optional[int] = None,
        salt: Optional[str] = None,
        on_complete: Optional[Callable[[], None]] = None,
        on_rollback: Optional[Callable[[Optional[GuardrailBreach]], None]] = None,
    ) -> RolloutState:
        """Enter the shadow stage with an already-loaded candidate."""
        with self._lock:
            if self.in_flight:
                raise RolloutError(
                    f"rollout of v{self.state.candidate_version} already in flight"
                )
            if baseline_version is None:
                baseline_version = self.registry.live_version
            if baseline_version < 1:
                raise RolloutError("no live baseline model to roll out against")
            now = self._clock()
            self.state = RolloutState(
                candidate_version=candidate_version,
                baseline_version=baseline_version,
                stages=self.config.stages,
                shadow_sample_rate=self.config.shadow_sample_rate,
                salt=salt if salt is not None else secrets.token_hex(8),
                status=SHADOW,
                stage_index=-1,
                started_at=now,
                stage_started_at=now,
            )
            self.report = DisagreementReport()
            self.candidate = candidate
            self._candidate_detector = candidate.detection_snapshot()[1]
            self._on_complete = on_complete
            self._on_rollback = on_rollback
            self._build_controller()
            self.state.record("start", now)
            self.save()
            self._attach()
            return self.state

    def start(self, candidate_version: int, **kwargs) -> RolloutState:
        """Load a candidate from the registry and enter shadow."""
        candidate = self.registry.load(candidate_version)
        return self.begin(candidate, candidate_version, **kwargs)

    def resume(self) -> Optional[RolloutState]:
        """Pick up a persisted rollout after a process restart.

        An in-flight state resumes at its exact stage with its exact
        sticky split; a state whose candidate is missing from the
        registry is aborted cleanly rather than half-resumed.
        """
        with self._lock:
            state = load_state(self.state_path)
            if state is None:
                return None
            self.state = state
            self.report = DisagreementReport.restore(state.report)
            if not state.in_flight:
                return state
            try:
                self.candidate = self.registry.load(state.candidate_version)
            except (LookupError, ValueError, OSError):
                state.status = ABORTED
                state.record("abort: candidate unloadable", self._clock())
                save_state(state, self.state_path)
                return state
            self._candidate_detector = self.candidate.detection_snapshot()[1]
            self._build_controller()
            self._attach()
            return state

    def close(self) -> None:
        """Join the shadow workers (call when the owning service stops)."""
        shadow = self._shadow
        self._shadow = None
        if shadow is not None:
            shadow.shutdown(drain=False)

    # ------------------------------------------------------------------
    # transitions

    def advance(self, force: bool = False) -> RolloutState:
        """Move one stage toward live (or roll back on a breach).

        Guardrails are evaluated first: a breach rolls back instead of
        advancing.  ``force=True`` is the operator override for the
        stage-completeness requirement — guardrails are never skipped.
        """
        with self._lock:
            self._require_in_flight()
            breach = self.controller.evaluate()
            if breach is not None:
                self.rollback(breach)
                return self.state
            if not force and not self.controller.stage_complete():
                raise RolloutError(
                    f"stage {self.state.stage_index} not complete "
                    "(not enough candidate evidence); use force to override"
                )
            state = self.state
            if state.stage_index + 1 < len(state.stages):
                state.stage_index += 1
                state.status = CANARY
                state.stage_started_at = self._clock()
                self.controller.reset_stage()
                state.record("advance", state.stage_started_at)
                # The traffic split shifted: cached live verdicts could
                # otherwise be served to sessions now on the candidate
                # arm.  Exactly one invalidation per stage transition.
                self._invalidate_runtime_cache()
                self.save()
            else:
                self._promote()
            return self.state

    def rollback(self, breach: Optional[GuardrailBreach] = None) -> RolloutState:
        """Route everything back to the baseline and record why.

        Mid-ramp the baseline was never displaced, so rollback is
        detach + one cache invalidation.  After promotion the baseline
        is reloaded from the registry and reinstalled (generation bump
        invalidates the cache through the swap listener).
        """
        with self._lock:
            self._require_state()
            state = self.state
            if state.status in (ROLLED_BACK, ABORTED):
                return state
            was_live = state.status == LIVE
            self._detach()
            if was_live:
                baseline = self.registry.load(state.baseline_version)
                if self.runtime is not None:
                    self.runtime.polygraph.install(baseline.cluster_model)
            else:
                self._invalidate_runtime_cache()
            self.registry.mark_rolled_back(state.candidate_version)
            state.status = ROLLED_BACK
            state.breach = breach.to_dict() if breach is not None else None
            state.record(
                f"rollback: {breach.name}" if breach is not None else "rollback",
                self._clock(),
            )
            self.save()
        callback = self._on_rollback
        if callback is not None:
            callback(breach)
        return self.state

    def abort(self) -> RolloutState:
        """Operator abort: stop the rollout without blaming a guardrail."""
        with self._lock:
            self._require_state()
            state = self.state
            if state.status in (ROLLED_BACK, ABORTED):
                return state
            self._detach()
            self._invalidate_runtime_cache()
            if state.in_flight or state.status == LIVE:
                self.registry.mark_rolled_back(state.candidate_version)
            state.status = ABORTED
            state.record("abort", self._clock())
            self.save()
            return state

    def _promote(self) -> None:
        """Final transition: candidate becomes the live model."""
        state = self.state
        # Detach first so no new request routes to the "candidate" arm,
        # then install: the swap listener performs this transition's
        # single cache invalidation.
        self._detach()
        if self.runtime is not None:
            self.runtime.polygraph.install(self.candidate.cluster_model)
        self.registry.mark_live(state.candidate_version)
        state.status = LIVE
        state.record("promote", self._clock())
        self.save()
        callback = self._on_complete
        if callback is not None:
            callback()

    # ------------------------------------------------------------------
    # runtime-facing API (hot path)

    def route(self, session_id: str) -> Tuple[bool, bool]:
        """``(candidate, mirror)`` for one session (sticky, salted)."""
        controller = self.controller
        if controller is None:
            return False, False
        candidate, mirror = controller.route(session_id)
        if mirror and self._shadow is None:
            mirror = False
        return candidate, mirror

    def mirror(self, values, ua_key, result) -> None:
        """Hand a live-arm verdict to the shadow scorer (non-blocking).

        Interim inferred *flags* (``unknown_ua_policy="infer"`` flagging
        an unknown release scored against its nearest known neighbour)
        are not comparison evidence: a candidate retrained to *know*
        that release is expected to disagree with them, and counting
        those disagreements would veto exactly the refreshes the
        coverage planner schedules.  Inferred pass verdicts still
        mirror — a candidate that flags traffic live waves through is
        overblocking, which the guardrails must keep seeing (the chaos
        drill's stale candidate fails exactly this way).
        """
        shadow = self._shadow
        if shadow is None:
            return
        if getattr(result, "inferred_release", None) is not None and result.flagged:
            return
        shadow.mirror(values, ua_key, result.flagged, result.risk_factor)

    def candidate_detector(self):
        """The frozen detector snapshot canary batches score against."""
        return self._candidate_detector

    def observe_candidate_batch(self, n: int, elapsed_ms: float) -> None:
        """Account one candidate-scored batch, then check guardrails."""
        if self.runtime is not None:
            self.runtime.runtime_stats.observe_stage("candidate_model", elapsed_ms)
        controller = self.controller
        if controller is not None:
            controller.note_candidate_verdicts(n)
        self._maybe_rollback()

    def drain_shadow(self, timeout: float = 10.0) -> bool:
        """Wait for the shadow backlog to settle (tests, clean shutdown)."""
        shadow = self._shadow
        return shadow.drain(timeout) if shadow is not None else True

    # ------------------------------------------------------------------
    # introspection

    def evaluate(self) -> Optional[GuardrailBreach]:
        """Current guardrail verdict (``None`` when healthy or idle)."""
        controller = self.controller
        return controller.evaluate() if controller is not None else None

    def status_dict(self) -> dict:
        """JSON-friendly view for the ``/rollout`` endpoint and the CLI."""
        state = self.state
        if state is None:
            return {"status": "idle"}
        report = self.report
        document = {
            "status": state.status,
            "candidate_version": state.candidate_version,
            "baseline_version": state.baseline_version,
            "stage_index": state.stage_index,
            "stage_fraction": state.stage_fraction,
            "stages": list(state.stages),
            "stage_age_seconds": max(0.0, self._clock() - state.stage_started_at),
            "breach": state.breach,
        }
        if report is not None:
            document["disagreement_rate"] = report.disagreement_rate
            document["flag_rate_delta"] = report.flag_rate_delta
            document["risk_shift"] = report.risk_shift
            document["comparisons"] = report.comparisons
            document["per_ua"] = report.per_ua()
        return document

    def metrics_lines(self) -> List[str]:
        """Prometheus lines the runtime appends to ``/metrics``."""
        state = self.state
        if state is None:
            return []
        report = self.report
        lines = [
            "# TYPE polygraph_rollout_in_flight gauge",
            f"polygraph_rollout_in_flight {1 if state.in_flight else 0}",
            "# TYPE polygraph_rollout_stage gauge",
            f"polygraph_rollout_stage {state.stage_index}",
            "# TYPE polygraph_rollout_stage_fraction gauge",
            f"polygraph_rollout_stage_fraction {state.stage_fraction:g}",
            "# TYPE polygraph_rollout_stage_age_seconds gauge",
            "polygraph_rollout_stage_age_seconds "
            f"{max(0.0, self._clock() - state.stage_started_at):.3f}",
        ]
        if report is not None:
            lines.extend(
                [
                    "# TYPE polygraph_rollout_disagreement_rate gauge",
                    f"polygraph_rollout_disagreement_rate "
                    f"{report.disagreement_rate:.6f}",
                    "# TYPE polygraph_rollout_comparisons_total counter",
                    f"polygraph_rollout_comparisons_total {report.comparisons}",
                ]
            )
        return lines

    def save(self) -> None:
        """Persist the current state (report snapshot included)."""
        state = self.state
        if state is None:
            return
        if self.report is not None:
            state.report = self.report.snapshot()
        save_state(state, self.state_path)

    # ------------------------------------------------------------------
    # internals

    def _build_controller(self) -> None:
        self.controller = CanaryController(
            self.state,
            self.config,
            self.guardrails,
            self.report,
            stats=self.runtime.runtime_stats if self.runtime is not None else None,
        )

    def _attach(self) -> None:
        if self.runtime is None:
            return
        self._shadow = ShadowScorer(
            self.candidate,
            self.report,
            stats=self.runtime.runtime_stats,
            n_workers=self.config.shadow_workers,
            queue_capacity=self.config.shadow_queue_capacity,
            on_comparison=self._maybe_rollback,
        ).start()
        self.runtime.attach_rollout(self)

    def _detach(self) -> None:
        if self.runtime is not None:
            self.runtime.detach_rollout(self)
        shadow = self._shadow
        if shadow is not None:
            # Stop intake only: this may run on a shadow worker thread
            # (auto-rollback fires from on_comparison), where joining the
            # pool would deadlock.  close() joins later.
            shadow.stop()

    def _maybe_rollback(self) -> None:
        """Auto-rollback hook: runs after every piece of new evidence."""
        if not self.in_flight:
            return
        controller = self.controller
        if controller is None:
            return
        breach = controller.evaluate()
        if breach is not None:
            self.rollback(breach)

    def _invalidate_runtime_cache(self) -> None:
        runtime = self.runtime
        if runtime is not None and runtime.cache is not None:
            runtime.cache.invalidate(runtime.polygraph.model_generation)

    def _require_state(self) -> None:
        if self.state is None:
            raise RolloutError("no rollout started or resumed")

    def _require_in_flight(self) -> None:
        self._require_state()
        if not self.state.in_flight:
            raise RolloutError(
                f"rollout is {self.state.status}, not in flight"
            )
