"""The high-throughput scoring runtime.

:class:`RuntimeScoringService` is the web-scale variant of
:class:`~repro.service.scoring.ScoringService`: the same wire contract,
the same verdicts, a very different execution model.

Request lifecycle::

    submit_wire(wire)
        │  fast ingest (wire contract, memoized UA class, dedup)
        ├─ reject ──────────────► Verdict(accepted=False)        (inline)
        │
        ├─ verdict-cache probe
        │    hit ───────────────► Verdict from cached result     (inline)
        │
        └─ miss → bounded queue ─► worker → micro-batcher
                       │                        │ full / linger / idle
                       │ full                   ▼
                       ▼               one detect_vectors() call
              Overloaded verdict       fills cache, completes handles

The caller's thread performs only the cheap, always-required work
(validation and the cache probe); the model only ever runs inside
vectorized batch flushes.  Because coarse-grained fingerprints are
deliberately low-cardinality (Section 7), a production-shaped replay
hits the cache for the overwhelming majority of sessions and the model
is consulted a few hundred times per hundred thousand requests.

Correctness contract: for any request sequence, the runtime produces
the same ``(session_id, flagged, risk_factor)`` verdicts as the
per-request :class:`ScoringService` — batching and caching are pure
optimizations.  On retrain the pipeline swaps models atomically and
notifies this service, which invalidates the verdict cache; in-flight
batches score entirely against the snapshot they started with, and
their results are refused by the cache afterwards (generation check).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import BrowserPolygraph
from repro.coverage.tracker import vendor_of
from repro.fingerprint.script import FingerprintPayload
from repro.runtime.batcher import MicroBatcher
from repro.runtime.cache import VerdictCache
from repro.runtime.fastingest import WireIngest
from repro.runtime.pool import WorkerPool, overloaded_verdict
from repro.runtime.stats import RuntimeStats
from repro.service.ingest import PayloadValidator, RejectReason
from repro.service.scoring import Verdict
from repro.service.storage import SessionStore
from repro.traffic.dataset import Dataset

__all__ = ["PendingVerdict", "RuntimeConfig", "RuntimeScoringService"]

# Cache-key tag separating candidate-arm verdicts during a rollout.
_CANDIDATE_ARM = "__candidate__"


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the high-throughput runtime."""

    n_workers: int = 4
    queue_capacity: int = 4096
    max_batch_size: int = 64
    max_linger_ms: float = 2.0
    cache_entries: int = 8192  # 0 disables the verdict cache
    cache_ttl_seconds: Optional[float] = 300.0
    quantization_step: int = 1
    latency_sample_every: int = 8  # sample 1-in-N total latencies

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if self.latency_sample_every < 1:
            raise ValueError("latency_sample_every must be >= 1")


class PendingVerdict:
    """Handle to a verdict that may not have been decided yet."""

    __slots__ = ("_verdict", "_event")

    def __init__(self, verdict: Optional[Verdict] = None) -> None:
        self._verdict = verdict
        self._event = None if verdict is not None else threading.Event()

    def done(self) -> bool:
        """Whether the verdict has been decided."""
        return self._verdict is not None

    def result(self, timeout: Optional[float] = None) -> Verdict:
        """Block until the verdict is decided and return it."""
        if self._verdict is None:
            assert self._event is not None
            if not self._event.wait(timeout):
                raise TimeoutError("verdict not decided within timeout")
        return self._verdict

    def _complete(self, verdict: Verdict) -> None:
        self._verdict = verdict
        if self._event is not None:
            self._event.set()


class _ScoreRequest:
    """One cache-missed request travelling queue → batcher → flush."""

    __slots__ = (
        "handle",
        "session_id",
        "values",
        "ua_key",
        "suspicious_globals",
        "cache_key",
        "started_at",
        "candidate",
        "mirror",
    )

    def __init__(
        self,
        handle: PendingVerdict,
        session_id: str,
        values: Tuple[int, ...],
        ua_key: str,
        suspicious_globals: Tuple[str, ...],
        cache_key: Optional[tuple],
        started_at: float,
        candidate: bool = False,
        mirror: bool = False,
    ) -> None:
        self.handle = handle
        self.session_id = session_id
        self.values = values
        self.ua_key = ua_key
        self.suspicious_globals = suspicious_globals
        self.cache_key = cache_key
        self.started_at = started_at
        self.candidate = candidate
        self.mirror = mirror

    def fail(self, exc: BaseException) -> None:
        """Answer the caller with a typed internal-error verdict."""
        self.handle._complete(
            Verdict(
                session_id=self.session_id,
                accepted=False,
                flagged=False,
                risk_factor=None,
                reject_reason=f"internal_error: {type(exc).__name__}",
                latency_ms=(time.perf_counter() - self.started_at) * 1000.0,
            )
        )


class RuntimeScoringService:
    """Micro-batched, cached, pooled scoring over a fitted pipeline.

    Drop-in for :class:`ScoringService` where it matters: ``score_wire``
    takes the same bytes and returns the same :class:`Verdict`; the
    ``validator`` (quarantine, dedup window) and optional ``store`` are
    honoured; ``scored_count`` / ``flagged_count`` / ``flag_rate`` keep
    their meanings.  New surface: :meth:`submit_wire` (non-blocking
    handle), :meth:`shutdown` (graceful drain), :attr:`runtime_stats`
    and :meth:`runtime_metrics_lines` (for ``/metrics``).
    """

    def __init__(
        self,
        polygraph: BrowserPolygraph,
        validator: Optional[PayloadValidator] = None,
        store: Optional[SessionStore] = None,
        config: RuntimeConfig = RuntimeConfig(),
        stats: Optional[RuntimeStats] = None,
    ) -> None:
        if not polygraph.is_fitted:
            raise ValueError(
                "RuntimeScoringService requires a fitted BrowserPolygraph"
            )
        self.polygraph = polygraph
        self.validator = validator if validator is not None else PayloadValidator()
        self.store = store
        self.config = config
        self.runtime_stats = stats if stats is not None else RuntimeStats()
        self.cache: Optional[VerdictCache] = None
        if config.cache_entries > 0:
            self.cache = VerdictCache(
                max_entries=config.cache_entries,
                ttl_seconds=config.cache_ttl_seconds,
                quantization_step=config.quantization_step,
                stats=self.runtime_stats,
            )
            self.cache.set_model_generation(polygraph.model_generation)
        self.batcher = MicroBatcher(
            self._score_batch,
            max_batch_size=config.max_batch_size,
            max_linger_ms=config.max_linger_ms,
        )
        self.pool = WorkerPool(
            handler=self._handle_request,
            n_workers=config.n_workers,
            queue_capacity=config.queue_capacity,
            idle=self._idle_flush,
            on_discard=self._discard_request,
            stats=self.runtime_stats,
        )
        self.scored_count = 0
        self.flagged_count = 0
        # Per-vendor unknown-UA volume (polygraph_unknown_ua_total) and
        # the optional coverage tracker fed from every scoring path.
        self.unknown_ua_counts: Dict[str, int] = {}
        self.coverage = None
        self._sample_every = config.latency_sample_every
        self._lock = threading.Lock()  # scored/flagged counters
        # Wire-contract enforcement lives in the shared fast-ingest
        # engine (also used router-side by the shm shard transport);
        # parse memos are model-independent and survive retrains,
        # except the UA memo which is cleared on model swap.
        self._ingest = WireIngest(self.validator)
        self._closed = False
        # Optional rollout manager (repro.rollout): routes sessions to a
        # candidate arm and mirrors live verdicts for shadow comparison.
        # Read once per request without the lock — attribute loads are
        # atomic, and a stale read only means one request routes with
        # the old split, which the stage-transition cache invalidation
        # already accounts for.
        self._rollout = None
        polygraph.add_retrain_listener(self._on_model_swap)

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "RuntimeScoringService":
        """Start the worker pool (idempotent)."""
        self.pool.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop intake and settle every outstanding request.

        ``drain=True`` scores the backlog before returning;
        ``drain=False`` sheds it with :class:`Overloaded` verdicts.
        Either way, every handle ever returned by :meth:`submit_wire`
        is resolved when this returns.
        """
        self._closed = True
        self.pool.shutdown(drain=drain)
        self.batcher.flush()
        self.polygraph.remove_retrain_listener(self._on_model_swap)

    def __enter__(self) -> "RuntimeScoringService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # ------------------------------------------------------------------
    # scoring

    def score_wire(self, wire: bytes, day: Optional[date] = None) -> Verdict:
        """The synchronous online path: submit and wait."""
        return self.submit_wire(wire, day=day).result()

    def submit_wire(
        self, wire: bytes, day: Optional[date] = None
    ) -> PendingVerdict:
        """Validate, probe the cache, and queue a model call if needed.

        Returns immediately: rejects, cache hits and sheds come back
        already decided; only cache misses wait on a batch flush.
        """
        started = time.perf_counter()
        rejected, fields = self._ingest_fast(wire)
        if rejected is not None:
            return PendingVerdict(
                Verdict(
                    session_id="",
                    accepted=False,
                    flagged=False,
                    risk_factor=None,
                    reject_reason=rejected.value,
                    latency_ms=(time.perf_counter() - started) * 1000.0,
                )
            )
        session_id, user_agent, values, globs, ua_key = fields
        if self.store is not None:
            self.store.append(
                FingerprintPayload(session_id, user_agent, values, 0.0, globs),
                day=day,
            )
        rollout = self._rollout
        candidate = mirror = False
        if rollout is not None:
            candidate, mirror = rollout.route(session_id)
        cache_key: Optional[tuple] = None
        if self.cache is not None:
            cache_key = self.cache.make_key(values, ua_key)
            if candidate:
                # Arm-tagged key: the candidate's verdicts must never be
                # served to live-arm sessions (or vice versa) while both
                # models answer from the same cache.
                cache_key = (_CANDIDATE_ARM,) + cache_key
            result = self.cache.get(cache_key)
            if result is not None:
                if mirror:
                    rollout.mirror(values, ua_key, result)
                if globs:
                    result = self.polygraph.escalate_result(result, globs)
                with self._lock:
                    self.scored_count += 1
                    if result.flagged:
                        self.flagged_count += 1
                    if not result.known_ua:
                        vendor = vendor_of(result.ua_key)
                        self.unknown_ua_counts[vendor] = (
                            self.unknown_ua_counts.get(vendor, 0) + 1
                        )
                if self.coverage is not None:
                    self.coverage.observe(
                        result.ua_key, known=result.known_ua, day=day
                    )
                latency = (time.perf_counter() - started) * 1000.0
                if self.scored_count % self._sample_every == 0:
                    self.runtime_stats.observe_stage("total", latency)
                return PendingVerdict(
                    Verdict(
                        session_id=session_id,
                        accepted=True,
                        flagged=result.flagged,
                        risk_factor=result.risk_factor,
                        reject_reason=None,
                        latency_ms=latency,
                        inferred_release=result.inferred_release,
                        inferred_distance=result.inferred_distance,
                    )
                )
        handle = PendingVerdict()
        request = _ScoreRequest(
            handle,
            session_id,
            values,
            ua_key,
            globs,
            cache_key,
            started,
            candidate=candidate,
            mirror=mirror,
        )
        if not self.pool.is_running and not self._closed:
            self.pool.start()
        if not self.pool.submit(request):
            return PendingVerdict(
                overloaded_verdict(
                    session_id, (time.perf_counter() - started) * 1000.0
                )
            )
        return handle

    # ------------------------------------------------------------------
    # rollout

    @property
    def rollout(self):
        """The attached rollout manager, or ``None``."""
        return self._rollout

    def attach_rollout(self, manager) -> None:
        """Route traffic through a rollout manager from now on."""
        self._rollout = manager

    def detach_rollout(self, manager=None) -> None:
        """Stop routing through ``manager`` (or whatever is attached)."""
        if manager is None or self._rollout is manager:
            self._rollout = None

    # ------------------------------------------------------------------
    # coverage

    def attach_coverage(self, tracker) -> "RuntimeScoringService":
        """Feed a :class:`~repro.coverage.tracker.CoverageTracker`.

        The tracker's known-release table is seeded from the live model
        here and re-synced inside :meth:`_on_model_swap`, so shard
        restarts and retrains keep classification aligned with the
        serving generation.
        """
        self.coverage = tracker
        generation, detector = self.polygraph.detection_snapshot()
        tracker.set_known_keys(
            detector.model.ua_to_cluster, generation=generation
        )
        return self

    # ------------------------------------------------------------------
    # retraining

    def retrain(
        self, dataset: Dataset, align_rare: bool = True, jobs: int = 1
    ) -> None:
        """Retrain the underlying pipeline and refresh runtime state.

        The pipeline swaps the model atomically under its lock;
        in-flight batches finish against the snapshot they took, the
        retrain listener invalidates the verdict cache, and stale batch
        results are refused by the cache's generation check.
        """
        self.polygraph.retrain(dataset, align_rare=align_rare, jobs=jobs)

    def _on_model_swap(self, generation: int) -> None:
        self.runtime_stats.incr("model_swaps")
        if self.cache is not None:
            self.cache.invalidate(generation)
        self._ingest.clear_ua_memo()
        if self.coverage is not None:
            _, detector = self.polygraph.detection_snapshot()
            self.coverage.set_known_keys(
                detector.model.ua_to_cluster, generation=generation
            )

    # ------------------------------------------------------------------
    # metrics

    @property
    def requests_total(self) -> int:
        """Requests ingested (accepted + rejected), from the ingest engine."""
        return self._ingest.requests_total

    @property
    def rejected_count(self) -> int:
        """Requests rejected by the wire contract or dedup window."""
        return self._ingest.rejected_count

    @property
    def flag_rate(self) -> float:
        """Share of scored sessions flagged so far."""
        return self.flagged_count / self.scored_count if self.scored_count else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Verdict-cache hit rate (0 when the cache is disabled)."""
        return self.cache.hit_rate if self.cache is not None else 0.0

    def runtime_metrics_lines(self) -> List[str]:
        """Prometheus-style lines for the ``/metrics`` endpoint."""
        stats = self.runtime_stats
        stats.set_counter("requests_total", self.requests_total)
        stats.set_counter("requests_rejected", self.rejected_count)
        stats.set_gauge("queue_depth", self.pool.queue_depth)
        stats.set_gauge(
            "polygraph_model_generation",
            self.polygraph.model_generation,
            absolute=True,
        )
        if self.cache is not None:
            self.cache.sync_stats()
            stats.set_gauge("cache_entries", len(self.cache))
        lines = stats.render_prometheus()
        with self._lock:
            unknown = dict(self.unknown_ua_counts)
        for vendor in sorted(unknown):
            lines.append(
                f'polygraph_unknown_ua_total{{vendor="{vendor}"}} '
                f"{unknown[vendor]}"
            )
        rollout = self._rollout
        if rollout is not None:
            lines.extend(rollout.metrics_lines())
        if self.coverage is not None:
            lines.extend(self.coverage.metrics_lines())
        return lines

    # ------------------------------------------------------------------
    # internals

    def _ingest_fast(
        self, wire: bytes
    ) -> Tuple[Optional[RejectReason], Optional[tuple]]:
        """Wire-contract enforcement via the shared fast-ingest engine.

        See :class:`~repro.runtime.fastingest.WireIngest` — identical
        checks in identical order to ``PayloadValidator.ingest_wire``,
        with parse/UA memoization.  Parity is pinned by tests.
        """
        return self._ingest.ingest(wire)

    def _handle_request(self, request: _ScoreRequest) -> None:
        self.batcher.submit(request)

    def _idle_flush(self) -> None:
        if self.batcher.pending_count == 0:
            return
        if self.pool.queue_empty():
            self.batcher.flush()
        else:
            self.batcher.poll()

    def _discard_request(self, request: _ScoreRequest) -> None:
        self.runtime_stats.incr("requests_shed")
        request.handle._complete(
            overloaded_verdict(
                request.session_id,
                (time.perf_counter() - request.started_at) * 1000.0,
            )
        )

    def _score_batch(self, requests: Sequence[_ScoreRequest]) -> None:
        """Score one coalesced batch, one vectorized model call per arm."""
        rollout = self._rollout
        live_requests: List[_ScoreRequest] = []
        candidate_requests: List[_ScoreRequest] = []
        for request in requests:
            (candidate_requests if request.candidate else live_requests).append(
                request
            )
        candidate_detector = None
        if candidate_requests:
            if rollout is not None:
                candidate_detector = rollout.candidate_detector()
            if candidate_detector is None:
                # The rollout ended while these requests were queued:
                # serve them from the live model, uncached (their
                # arm-tagged keys belong to a rollout that is over).
                for request in candidate_requests:
                    request.cache_key = None
                live_requests.extend(candidate_requests)
                candidate_requests = []
        stats = self.runtime_stats
        stats.observe_batch(len(requests))
        if live_requests:
            model_started = time.perf_counter()
            generation, detector = self.polygraph.detection_snapshot()
            matrix = np.asarray([r.values for r in live_requests], dtype=float)
            results = detector.evaluate_vectors(
                matrix, [r.ua_key for r in live_requests]
            )
            stats.observe_stage(
                "model", (time.perf_counter() - model_started) * 1000.0
            )
            if rollout is not None:
                for request, result in zip(live_requests, results):
                    if request.mirror:
                        rollout.mirror(request.values, request.ua_key, result)
            self._complete_arm(live_requests, results, generation)
        if candidate_requests:
            candidate_started = time.perf_counter()
            generation = self.polygraph.model_generation
            matrix = np.asarray(
                [r.values for r in candidate_requests], dtype=float
            )
            results = candidate_detector.evaluate_vectors(
                matrix, [r.ua_key for r in candidate_requests]
            )
            rollout.observe_candidate_batch(
                len(candidate_requests),
                (time.perf_counter() - candidate_started) * 1000.0,
            )
            self._complete_arm(candidate_requests, results, generation)

    def _complete_arm(
        self,
        requests: Sequence[_ScoreRequest],
        results: Sequence,
        generation: int,
    ) -> None:
        """Cache, escalate, and answer one arm's share of a batch."""
        completed_at = time.perf_counter()
        scored = 0
        flagged = 0
        unknown: Dict[str, int] = {}
        coverage = self.coverage
        for request, result in zip(requests, results):
            if self.cache is not None and request.cache_key is not None:
                self.cache.put(request.cache_key, result, generation=generation)
            final = self.polygraph.escalate_result(
                result, request.suspicious_globals
            )
            scored += 1
            if final.flagged:
                flagged += 1
            if not final.known_ua:
                vendor = vendor_of(final.ua_key)
                unknown[vendor] = unknown.get(vendor, 0) + 1
            if coverage is not None:
                coverage.observe(final.ua_key, known=final.known_ua)
            request.handle._complete(
                Verdict(
                    session_id=request.session_id,
                    accepted=True,
                    flagged=final.flagged,
                    risk_factor=final.risk_factor,
                    reject_reason=None,
                    latency_ms=(completed_at - request.started_at) * 1000.0,
                    inferred_release=final.inferred_release,
                    inferred_distance=final.inferred_distance,
                )
            )
        with self._lock:
            self.scored_count += scored
            self.flagged_count += flagged
            for vendor, count in unknown.items():
                self.unknown_ua_counts[vendor] = (
                    self.unknown_ua_counts.get(vendor, 0) + count
                )
