"""The verdict cache: LRU + TTL over quantized fingerprints.

The paper's whole privacy argument (Section 7) is that coarse-grained
fingerprints are *low-entropy*: a 28-integer vector plus a parsed
user-agent equivalence class lands in anonymity sets of thousands of
users.  Deployment-side, that same property means live traffic contains
only a few thousand distinct ``(feature vector, user-agent class)``
pairs — so a small cache in front of the model absorbs almost every
request, and repeat fingerprints skip the scaler→PCA→KMeans chain
entirely.

Keys are the quantized feature tuple plus the parsed user-agent
equivalence class (``vendor-version``, the unit the cluster table is
keyed by) — never the raw session.  Values are
:class:`~repro.core.detection.DetectionResult` objects, which carry no
per-session state, so caching is a pure optimization: a hit returns
byte-identical verdict fields to a model call.

Invalidation contract: every model swap (retrain, drift-triggered
promotion, load) must call :meth:`invalidate`, and entries computed
against an older model generation are dropped at :meth:`put` time —
a flush that raced a retrain cannot poison the cache with stale
verdicts.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional, Sequence, Tuple

from repro.runtime.stats import RuntimeStats

__all__ = ["VerdictCache", "quantize_vector"]


def quantize_vector(values: Sequence[int], step: int = 1) -> Tuple[int, ...]:
    """Quantize a feature vector into its cache-key form.

    With ``step=1`` (the deployed default) this is the identity on the
    integer features, which is what keeps the cache *pure*: distinct
    vectors never collide.  Coarser steps trade purity for hit rate and
    exist for capacity experiments only.
    """
    if step <= 1:
        return tuple(int(v) for v in values)
    return tuple(int(v) // step * step for v in values)


class VerdictCache:
    """LRU + TTL cache of detection results.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-used entry is evicted beyond it.
    ttl_seconds:
        Entries older than this are expired on probe.  ``None`` disables
        the TTL (pure LRU).
    quantization_step:
        Passed to :func:`quantize_vector` when building keys.
    clock:
        Injectable monotonic clock (seconds) for tests.
    stats:
        Shared :class:`RuntimeStats`; a private one is created if
        omitted.  :meth:`sync_stats` mirrors ``cache_hits``,
        ``cache_misses``, ``cache_evictions``, ``cache_expirations``,
        ``cache_invalidations`` and ``cache_stale_drops`` into it.
    """

    def __init__(
        self,
        max_entries: int = 8192,
        ttl_seconds: Optional[float] = 300.0,
        quantization_step: int = 1,
        clock: Callable[[], float] = time.monotonic,
        stats: Optional[RuntimeStats] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.quantization_step = max(1, int(quantization_step))
        self.stats = stats if stats is not None else RuntimeStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Tuple[float, object]]" = OrderedDict()
        self._model_generation: Optional[int] = None
        # Counters are plain ints mutated under the cache lock — the
        # probe path runs per request, and a nested stats-lock round
        # trip per probe is measurable.  ``sync_stats`` mirrors them
        # into the shared registry when metrics are rendered.
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0
        self._stale_drops = 0

    # ------------------------------------------------------------------

    def make_key(self, values: Sequence[int], ua_class: str) -> tuple:
        """Cache key for a feature vector and a parsed UA class."""
        if self.quantization_step <= 1 and type(values) is tuple:
            # Identity quantization on an already-int tuple: the hot
            # path hands us the ingest-validated tuple, reuse it.
            return (ua_class, values)
        return (ua_class, quantize_vector(values, self.quantization_step))

    def get(self, key: tuple) -> Optional[object]:
        """Probe the cache; returns the cached result or ``None``."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            stored_at, value = entry
            if (
                self.ttl_seconds is not None
                and now - stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def get_many(self, keys: Sequence[Optional[tuple]]) -> list:
        """Probe a whole chunk under one lock and one clock read.

        ``None`` keys pass through as ``None`` without touching the
        hit/miss counters (the caller uses them for positions it never
        built a key for, e.g. rejected wires).  Per-key semantics —
        TTL expiry, LRU touch, counters — match :meth:`get` exactly.
        """
        now = self._clock()
        ttl = self.ttl_seconds
        deadline = None if ttl is None else now - ttl
        out: list = []
        append = out.append
        hits = misses = expirations = 0
        with self._lock:
            entries = self._entries
            entries_get = entries.get
            move_to_end = entries.move_to_end
            for key in keys:
                if key is None:
                    append(None)
                    continue
                entry = entries_get(key)
                if entry is None:
                    misses += 1
                    append(None)
                    continue
                stored_at, value = entry
                if deadline is not None and stored_at < deadline:
                    del entries[key]
                    expirations += 1
                    misses += 1
                    append(None)
                    continue
                move_to_end(key)
                hits += 1
                append(value)
            self._hits += hits
            self._misses += misses
            self._expirations += expirations
        return out

    def put(
        self, key: tuple, value: object, generation: Optional[int] = None
    ) -> bool:
        """Insert a result computed against model ``generation``.

        Returns ``False`` (and stores nothing) when ``generation`` no
        longer matches the cache's model generation — the caller scored
        against a model that has since been swapped out.
        """
        now = self._clock()
        with self._lock:
            if (
                generation is not None
                and self._model_generation is not None
                and generation != self._model_generation
            ):
                self._stale_drops += 1
                return False
            self._entries[key] = (now, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            return True

    def invalidate(self, generation: Optional[int] = None) -> int:
        """Drop every entry (model swap); returns how many were dropped.

        ``generation`` records the new model generation so that stale
        :meth:`put` calls from in-flight batches are rejected.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if generation is not None:
                self._model_generation = generation
            self._invalidations += 1
        return dropped

    def set_model_generation(self, generation: int) -> None:
        """Pin the model generation without dropping entries (startup)."""
        with self._lock:
            self._model_generation = generation

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def model_generation(self) -> Optional[int]:
        """The model generation entries are valid for."""
        with self._lock:
            return self._model_generation

    @property
    def hits(self) -> int:
        """Lifetime cache hits."""
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Lifetime cache misses (including TTL expirations)."""
        with self._lock:
            return self._misses

    @property
    def evictions(self) -> int:
        """Entries evicted under LRU pressure."""
        with self._lock:
            return self._evictions

    @property
    def expirations(self) -> int:
        """Entries expired by the TTL."""
        with self._lock:
            return self._expirations

    @property
    def invalidations(self) -> int:
        """Times :meth:`invalidate` ran (model swaps + rollout stage shifts)."""
        with self._lock:
            return self._invalidations

    @property
    def stale_drops(self) -> int:
        """Puts refused because their model generation was stale."""
        with self._lock:
            return self._stale_drops

    @property
    def hit_rate(self) -> float:
        """Hits over probes (0 before the first probe)."""
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def sync_stats(self) -> None:
        """Mirror the cache counters into the shared stats registry."""
        with self._lock:
            pairs = (
                ("cache_hits", self._hits),
                ("cache_misses", self._misses),
                ("cache_evictions", self._evictions),
                ("cache_expirations", self._expirations),
                ("cache_invalidations", self._invalidations),
                ("cache_stale_drops", self._stale_drops),
            )
        for name, value in pairs:
            self.stats.set_counter(name, value)
