"""Runtime metrics registry.

One thread-safe registry for everything the high-throughput scoring
runtime wants to observe about itself: monotonic counters (requests,
cache hits, sheds, batches), gauges with peak tracking (queue depth),
the batch-size distribution, and per-stage latency percentiles over a
bounded reservoir.  ``/metrics`` renders the registry Prometheus-style
next to the existing scoring counters, so one scrape shows whether the
micro-batcher is actually coalescing and whether the verdict cache is
earning its memory.

Latency reservoirs are bounded deques: old observations fall off, so
the percentiles track recent behaviour rather than the whole process
lifetime (what an operator staring at a dashboard wants).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

__all__ = ["RuntimeStats", "percentile"]


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty sequence)."""
    data = sorted(values)
    if not data:
        return 0.0
    if p <= 0.0:
        return float(data[0])
    if p >= 100.0:
        return float(data[-1])
    rank = max(1, math.ceil(p / 100.0 * len(data)))
    return float(data[rank - 1])


class RuntimeStats:
    """Counters, gauges, batch sizes and stage latencies, one lock."""

    def __init__(self, reservoir: int = 4096) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._peaks: Dict[str, float] = {}
        self._absolute: set = set()
        self._batch_sizes: Deque[int] = deque(maxlen=reservoir)
        self._stage_ms: Dict[str, Deque[float]] = {}

    # ------------------------------------------------------------------
    # counters and gauges

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def set_counter(self, name: str, value: int) -> None:
        """Overwrite counter ``name``.

        For counters whose source of truth lives elsewhere (the service
        keeps its request totals under its own lock) and is mirrored in
        before rendering.
        """
        with self._lock:
            self._counters[name] = int(value)

    def set_gauge(self, name: str, value: float, absolute: bool = False) -> None:
        """Set gauge ``name``, tracking its peak.

        ``absolute=True`` marks the name as already fully qualified:
        :meth:`render_prometheus` emits it verbatim instead of under the
        ``polygraph_runtime_`` prefix (used for fleet-level gauges such
        as ``polygraph_model_generation``, which dashboards correlate
        with verdict shifts across services).
        """
        with self._lock:
            self._gauges[name] = float(value)
            if value > self._peaks.get(name, float("-inf")):
                self._peaks[name] = float(value)
            if absolute:
                self._absolute.add(name)

    def gauge(self, name: str) -> float:
        """Current gauge value (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def peak(self, name: str) -> float:
        """Highest value gauge ``name`` ever held (0 if never set)."""
        with self._lock:
            return self._peaks.get(name, 0.0)

    # ------------------------------------------------------------------
    # distributions

    def observe_batch(self, size: int) -> None:
        """Record one flushed batch of ``size`` requests."""
        with self._lock:
            self._counters["batches_total"] = (
                self._counters.get("batches_total", 0) + 1
            )
            self._counters["batched_requests_total"] = (
                self._counters.get("batched_requests_total", 0) + int(size)
            )
            self._batch_sizes.append(int(size))

    def observe_stage(self, stage: str, ms: float) -> None:
        """Record one latency observation for a pipeline stage."""
        with self._lock:
            series = self._stage_ms.get(stage)
            if series is None:
                series = deque(maxlen=self._reservoir)
                self._stage_ms[stage] = series
            series.append(float(ms))

    def batch_size_percentile(self, p: float) -> float:
        """Percentile of the recent batch-size distribution."""
        with self._lock:
            return percentile(self._batch_sizes, p)

    @property
    def mean_batch_size(self) -> float:
        """Mean recent batch size (0 when no batch flushed yet)."""
        with self._lock:
            if not self._batch_sizes:
                return 0.0
            return sum(self._batch_sizes) / len(self._batch_sizes)

    def stage_percentile(self, stage: str, p: float) -> float:
        """Latency percentile (ms) of ``stage`` over the reservoir."""
        with self._lock:
            return percentile(self._stage_ms.get(stage, ()), p)

    def stages(self) -> List[str]:
        """Stages with at least one observation, sorted."""
        with self._lock:
            return sorted(self._stage_ms)

    # ------------------------------------------------------------------
    # derived rates

    @property
    def cache_hit_rate(self) -> float:
        """Hits over probes (0 before the first probe)."""
        with self._lock:
            hits = self._counters.get("cache_hits", 0)
            misses = self._counters.get("cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    # ------------------------------------------------------------------
    # export

    def snapshot(self) -> dict:
        """A point-in-time dict of everything the registry holds."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            peaks = dict(self._peaks)
            absolute = set(self._absolute)
            batch_sizes = list(self._batch_sizes)
            stages = {k: list(v) for k, v in self._stage_ms.items()}
        return {
            "counters": counters,
            "gauges": gauges,
            "peaks": peaks,
            "absolute_gauges": absolute,
            "batch_sizes": batch_sizes,
            "stage_latency_ms": stages,
        }

    def render_prometheus(self, prefix: str = "polygraph_runtime") -> List[str]:
        """Prometheus-style text lines for ``/metrics``."""
        snap = self.snapshot()
        lines: List[str] = []
        for name in sorted(snap["counters"]):
            metric = f"{prefix}_{name}"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {snap['counters'][name]}")
        for name in sorted(snap["gauges"]):
            if name in snap["absolute_gauges"]:
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {snap['gauges'][name]:g}")
                continue
            metric = f"{prefix}_{name}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {snap['gauges'][name]:g}")
            lines.append(f"{metric}_peak {snap['peaks'][name]:g}")
        hit_rate = self.cache_hit_rate
        lines.append(f"# TYPE {prefix}_cache_hit_rate gauge")
        lines.append(f"{prefix}_cache_hit_rate {hit_rate:.6f}")
        if snap["batch_sizes"]:
            sizes = snap["batch_sizes"]
            lines.append(f"# TYPE {prefix}_batch_size summary")
            for q in (50, 90, 99):
                lines.append(
                    f'{prefix}_batch_size{{quantile="p{q}"}} '
                    f"{percentile(sizes, q):g}"
                )
            lines.append(f"{prefix}_batch_size_max {max(sizes):g}")
        for stage in sorted(snap["stage_latency_ms"]):
            series = snap["stage_latency_ms"][stage]
            if not series:
                continue
            for q in (50, 90, 99):
                lines.append(
                    f'{prefix}_stage_latency_ms{{stage="{stage}",quantile="p{q}"}} '
                    f"{percentile(series, q):.4f}"
                )
        return lines
