"""Throughput benchmark driver: per-request vs batched vs cached.

Replays a synthetic FinOrg traffic window through three executions of
the online path and measures sessions/sec plus p50/p99 latency:

* ``per-request`` — the baseline :class:`ScoringService`, one
  scaler→PCA→KMeans call per session;
* ``batched`` — the runtime with the verdict cache disabled: every
  session still reaches the model, but through coalesced
  ``detect_vectors`` flushes;
* ``batched+cached`` — the full runtime; repeat fingerprints skip the
  model entirely.

The driver also verifies the paper-grade correctness contract: all
three executions must produce identical ``(session_id, flagged,
risk_factor)`` triples, because batching and caching are pure
optimizations.  Both the CLI (``browser-polygraph bench-runtime``) and
``benchmarks/bench_runtime_throughput.py`` run through this module, so
the numbers agree no matter how they are invoked.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import render_table
from repro.core.pipeline import BrowserPolygraph
from repro.runtime.service import RuntimeConfig, RuntimeScoringService
from repro.runtime.stats import percentile
from repro.service.scoring import ScoringService, Verdict
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator
from repro.traffic.replay import iter_payloads

__all__ = ["BenchReport", "ModeResult", "run_throughput_benchmark"]

Triple = Tuple[str, bool, Optional[int]]


@dataclass(frozen=True)
class ModeResult:
    """Throughput and latency of one execution mode."""

    mode: str
    n_sessions: int
    wall_seconds: float
    sessions_per_second: float
    p50_ms: float
    p99_ms: float


@dataclass
class BenchReport:
    """Everything one benchmark run measured."""

    modes: List[ModeResult]
    speedup_batched: float
    speedup_cached: float
    cache_hit_rate: float
    mean_batch_size: float
    identical_verdicts: bool
    shed_requests: int

    def render(self) -> str:
        """Paper-style plain-text table plus the derived facts."""
        table = render_table(
            ["mode", "sessions", "wall s", "sessions/s", "p50 ms", "p99 ms"],
            [
                (
                    m.mode,
                    m.n_sessions,
                    round(m.wall_seconds, 3),
                    int(m.sessions_per_second),
                    round(m.p50_ms, 3),
                    round(m.p99_ms, 3),
                )
                for m in self.modes
            ],
            title="Runtime throughput: per-request vs batched vs cached",
        )
        lines = [
            table,
            "",
            f"speedup (batched)        : {self.speedup_batched:.2f}x",
            f"speedup (batched+cached) : {self.speedup_cached:.2f}x",
            f"cache hit rate           : {100.0 * self.cache_hit_rate:.2f}%",
            f"mean batch size          : {self.mean_batch_size:.1f}",
            f"identical verdict triples: {self.identical_verdicts}",
            f"shed requests            : {self.shed_requests}",
        ]
        return "\n".join(lines)


def _replay_baseline(
    service: ScoringService, wires: Sequence[bytes]
) -> Tuple[List[Triple], List[float], float]:
    started = time.perf_counter()
    verdicts = [service.score_wire(wire) for wire in wires]
    wall = time.perf_counter() - started
    triples = [(v.session_id, v.flagged, v.risk_factor) for v in verdicts]
    return triples, [v.latency_ms for v in verdicts], wall


def _replay_runtime(
    service: RuntimeScoringService,
    wires: Sequence[bytes],
    concurrency: int,
    window: int,
) -> Tuple[List[Triple], List[float], float]:
    """Pipelined replay: producers keep ``window`` requests in flight."""
    n = len(wires)
    verdicts: List[Optional[Verdict]] = [None] * n
    bounds = [
        (i * n // concurrency, (i + 1) * n // concurrency)
        for i in range(concurrency)
    ]

    def producer(lo: int, hi: int) -> None:
        pending: "deque[Tuple[int, object]]" = deque()
        for idx in range(lo, hi):
            pending.append((idx, service.submit_wire(wires[idx])))
            if len(pending) >= window:
                slot, handle = pending.popleft()
                verdicts[slot] = handle.result(timeout=30.0)
        while pending:
            slot, handle = pending.popleft()
            verdicts[slot] = handle.result(timeout=30.0)

    threads = [
        threading.Thread(target=producer, args=bound, daemon=True)
        for bound in bounds
        if bound[0] < bound[1]
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    done = [v for v in verdicts if v is not None]
    triples = [(v.session_id, v.flagged, v.risk_factor) for v in done]
    return triples, [v.latency_ms for v in done], wall


def _mode_result(
    mode: str, n: int, wall: float, latencies: Sequence[float]
) -> ModeResult:
    return ModeResult(
        mode=mode,
        n_sessions=n,
        wall_seconds=wall,
        sessions_per_second=n / wall if wall > 0 else 0.0,
        p50_ms=percentile(latencies, 50),
        p99_ms=percentile(latencies, 99),
    )


def run_throughput_benchmark(
    n_sessions: int = 12_000,
    seed: int = 7,
    concurrency: int = 8,
    config: Optional[RuntimeConfig] = None,
    polygraph: Optional[BrowserPolygraph] = None,
    dataset: Optional[Dataset] = None,
) -> BenchReport:
    """Run all three modes over one synthetic replay.

    ``dataset`` / ``polygraph`` may be supplied to reuse pre-built
    artifacts (the benchmark harness shares the paper-scale pipeline);
    otherwise a window of ``max(n_sessions, 2000)`` sessions is
    generated and the pipeline is trained on it.
    """
    if dataset is None:
        dataset = TrafficSimulator(
            TrafficConfig(seed=seed).scaled(max(n_sessions, 2000))
        ).generate()
    if polygraph is None:
        polygraph = BrowserPolygraph().fit(dataset)
    runtime_config = config if config is not None else RuntimeConfig()
    wires = [p.to_wire() for p in iter_payloads(dataset, n_sessions)]
    n = len(wires)
    # Keep enough queue headroom that the pipelined replay never sheds:
    # shed verdicts would (correctly) break the identical-triples check.
    window = max(1, runtime_config.queue_capacity // (2 * max(1, concurrency)))

    base_triples, base_lat, base_wall = _replay_baseline(
        ScoringService(polygraph), wires
    )

    batched_service = RuntimeScoringService(
        polygraph,
        config=replace(runtime_config, cache_entries=0),
    ).start()
    try:
        bat_triples, bat_lat, bat_wall = _replay_runtime(
            batched_service, wires, concurrency, window
        )
    finally:
        batched_service.shutdown()

    cached_service = RuntimeScoringService(polygraph, config=runtime_config)
    cached_service.start()
    try:
        cac_triples, cac_lat, cac_wall = _replay_runtime(
            cached_service, wires, concurrency, window
        )
        hit_rate = cached_service.cache_hit_rate
        mean_batch = cached_service.runtime_stats.mean_batch_size
        shed = cached_service.runtime_stats.counter("requests_shed")
    finally:
        cached_service.shutdown()
    shed += batched_service.runtime_stats.counter("requests_shed")

    modes = [
        _mode_result("per-request", n, base_wall, base_lat),
        _mode_result("batched", n, bat_wall, bat_lat),
        _mode_result("batched+cached", n, cac_wall, cac_lat),
    ]
    return BenchReport(
        modes=modes,
        speedup_batched=base_wall / bat_wall if bat_wall > 0 else 0.0,
        speedup_cached=base_wall / cac_wall if cac_wall > 0 else 0.0,
        cache_hit_rate=hit_rate,
        mean_batch_size=mean_batch,
        identical_verdicts=(base_triples == bat_triples == cac_triples),
        shed_requests=shed,
    )
