"""The worker pool: a bounded queue with backpressure and graceful drain.

The online path must degrade predictably under overload.  Rather than
queueing unboundedly (and blowing the Section 3 latency budget for
every queued request), the pool's queue is bounded: when it is full,
:meth:`WorkerPool.submit` refuses the request and the scoring runtime
answers with a typed :class:`Overloaded` verdict — an explicit shed the
caller's risk engine can treat as "retry later", which is operationally
honest in a way a 30-second queue wait is not.

Workers drain the queue and hand each request to ``handler``.  After
handling, a worker whose queue is empty invokes the ``idle`` hook (the
runtime flushes the micro-batcher there, so a trickle of traffic never
waits out the full linger), and the same hook runs on queue-poll
timeouts to bound the linger when traffic stops entirely.

``shutdown(drain=True)`` stops intake, lets the workers finish every
queued request, and joins them — zero unanswered requests.  With
``drain=False`` the queued requests are handed to ``on_discard``
instead (the runtime sheds them), which still leaves zero unanswered.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.runtime.stats import RuntimeStats
from repro.service.scoring import Verdict

__all__ = ["Overloaded", "WorkerPool", "overloaded_verdict"]

OVERLOADED_REASON = "overloaded"


@dataclass(frozen=True)
class Overloaded(Verdict):
    """A typed shed verdict: the runtime refused the request unscored."""


def overloaded_verdict(session_id: str = "", latency_ms: float = 0.0) -> Overloaded:
    """Build the shed verdict for one refused request."""
    return Overloaded(
        session_id=session_id,
        accepted=False,
        flagged=False,
        risk_factor=None,
        reject_reason=OVERLOADED_REASON,
        latency_ms=latency_ms,
    )


class _Sentinel:
    """Queue poison pill; one per worker on shutdown."""


_SENTINEL = _Sentinel()


class WorkerPool:
    """Threads draining a bounded request queue.

    Parameters
    ----------
    handler:
        ``handler(item)`` — processes one queued request.
    n_workers:
        Number of worker threads.
    queue_capacity:
        Bound on the request queue; beyond it :meth:`submit` sheds.
    idle:
        Optional hook run by a worker when the queue is (momentarily)
        empty, and on queue-poll timeouts.
    on_discard:
        Optional hook run for each queued item dropped by a
        non-draining shutdown.
    stats:
        Shared :class:`RuntimeStats`; queue depth/peak gauges and the
        ``requests_shed`` counter land here.
    poll_interval_s:
        Worker queue-poll timeout; bounds how stale the ``idle`` hook
        can be when traffic stops.
    """

    def __init__(
        self,
        handler: Callable[[object], None],
        n_workers: int = 4,
        queue_capacity: int = 2048,
        idle: Optional[Callable[[], None]] = None,
        on_discard: Optional[Callable[[object], None]] = None,
        stats: Optional[RuntimeStats] = None,
        poll_interval_s: float = 0.005,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.handler = handler
        self.n_workers = n_workers
        self.queue_capacity = queue_capacity
        self.idle = idle
        self.on_discard = on_discard
        self.stats = stats if stats is not None else RuntimeStats()
        self.poll_interval_s = poll_interval_s
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_capacity)
        self._threads: List[threading.Thread] = []
        self._accepting = False
        self._started = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._accepting = True
            for index in range(self.n_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"polygraph-worker-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def submit(self, item: object) -> bool:
        """Enqueue a request; ``False`` means the pool shed it."""
        if not self._accepting:
            self.stats.incr("requests_shed")
            return False
        try:
            self._queue.put_nowait(item)
        except queue.Full:
            self.stats.incr("requests_shed")
            return False
        depth = self._queue.qsize()
        self.stats.set_gauge("queue_depth", depth)
        return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Stop intake, settle every queued request, join the workers.

        With ``drain=True`` the workers finish the backlog first; with
        ``drain=False`` the backlog is handed to ``on_discard``.  Either
        way no request is left unanswered.
        """
        with self._lock:
            if not self._started:
                return
            self._accepting = False
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if not isinstance(item, _Sentinel) and self.on_discard:
                    self.on_discard(item)
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        with self._lock:
            self._started = False
        self.stats.set_gauge("queue_depth", 0)

    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (approximate)."""
        return self._queue.qsize()

    def queue_empty(self) -> bool:
        """Whether the queue is (momentarily) empty."""
        return self._queue.empty()

    @property
    def is_running(self) -> bool:
        """Whether the workers are alive."""
        with self._lock:
            return self._started

    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=self.poll_interval_s)
            except queue.Empty:
                if self.idle is not None:
                    self.idle()
                continue
            if isinstance(item, _Sentinel):
                return
            try:
                self.handler(item)
            except Exception as exc:  # noqa: BLE001 — a bad request must not kill the worker
                fail = getattr(item, "fail", None)
                if fail is not None:
                    fail(exc)
            if self.idle is not None and self._queue.empty():
                self.idle()
