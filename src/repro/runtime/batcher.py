"""The micro-batcher: coalesce concurrent score requests into one model call.

The model chain is overwhelmingly cheaper per row when vectorized — one
scaler→PCA→KMeans pass over an ``(n, 28)`` matrix costs a fraction of a
microsecond per row versus tens of microseconds for ``n`` single-row
calls.  The batcher exploits that: requests accumulate into a pending
batch, and the batch is flushed to the vectorized scorer when it is
full (``max_batch_size``) or when its oldest request has lingered past
``max_linger_ms`` — whichever triggers first.

The batcher owns no thread.  Flushes run in whichever caller crosses
the trigger: a producer whose :meth:`submit` fills the batch flushes it
inline, and the worker pool calls :meth:`poll` (deadline check) or
:meth:`flush` (unconditional, used when its queue runs empty) from its
workers.  That keeps the latency story adaptive — under a burst the
batch fills and flushes at ``max_batch_size``; under a trickle the
first idle worker flushes immediately, so a lone request never waits
out the full linger.

Requests are any objects with a ``fail(exc)`` method — a scorer that
raises fails every request in the flushed batch instead of wedging the
pipeline.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Sequence

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Accumulates requests and flushes them as one vectorized call.

    Parameters
    ----------
    score_batch:
        ``score_batch(requests)`` — scores the whole batch and completes
        each request.  Exceptions are caught and fanned out to every
        request's ``fail(exc)``.
    max_batch_size:
        Flush as soon as this many requests are pending.
    max_linger_ms:
        Upper bound on how long the oldest pending request may wait
        before a :meth:`poll` flushes it.
    clock:
        Injectable monotonic clock (seconds) for tests.
    """

    def __init__(
        self,
        score_batch: Callable[[Sequence[object]], None],
        max_batch_size: int = 64,
        max_linger_ms: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_linger_ms < 0:
            raise ValueError("max_linger_ms must be non-negative")
        self.score_batch = score_batch
        self.max_batch_size = max_batch_size
        self.max_linger_ms = max_linger_ms
        self._clock = clock
        self._lock = threading.Lock()
        self._pending: List[object] = []
        self._oldest_at: Optional[float] = None

    # ------------------------------------------------------------------

    def submit(self, request: object) -> bool:
        """Add a request; returns ``True`` if this call flushed a batch."""
        with self._lock:
            if not self._pending:
                self._oldest_at = self._clock()
            self._pending.append(request)
            batch = self._drain() if len(self._pending) >= self.max_batch_size else None
        if batch:
            self._run(batch)
            return True
        return False

    def poll(self) -> int:
        """Flush if the oldest pending request exceeded the linger.

        Returns the size of the flushed batch (0 when nothing was due).
        """
        with self._lock:
            if not self._pending:
                return 0
            waited_ms = (self._clock() - self._oldest_at) * 1000.0
            batch = self._drain() if waited_ms >= self.max_linger_ms else None
        if batch:
            self._run(batch)
            return len(batch)
        return 0

    def flush(self) -> int:
        """Unconditionally flush whatever is pending; returns its size."""
        with self._lock:
            batch = self._drain()
        if batch:
            self._run(batch)
            return len(batch)
        return 0

    # ------------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Requests currently waiting for a flush."""
        with self._lock:
            return len(self._pending)

    def next_deadline(self) -> Optional[float]:
        """Clock time by which the pending batch must flush, or ``None``."""
        with self._lock:
            if self._oldest_at is None:
                return None
            return self._oldest_at + self.max_linger_ms / 1000.0

    # ------------------------------------------------------------------

    def _drain(self) -> List[object]:
        batch = self._pending
        self._pending = []
        self._oldest_at = None
        return batch

    def _run(self, batch: List[object]) -> None:
        try:
            self.score_batch(batch)
        except Exception as exc:  # noqa: BLE001 — fan the failure out
            for request in batch:
                fail = getattr(request, "fail", None)
                if fail is not None:
                    fail(exc)
