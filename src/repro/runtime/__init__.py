"""High-throughput scoring runtime: the web-scale online path.

The paper's pitch is *efficient deployment*: a 28-feature
coarse-grained fingerprint scored inside FinOrg's 100ms budget at
205k-session scale.  The per-request :class:`ScoringService` honours
the budget but spends a full scaler→PCA→KMeans chain on every session.
This subpackage turns that path into a web-scale one by exploiting the
paper's own design point — coarse-grained fingerprints are deliberately
low-cardinality (the Section 7 anonymity-set analysis), so live traffic
contains thousands of distinct fingerprints, not millions:

* :mod:`repro.runtime.batcher` — a micro-batcher coalescing concurrent
  requests into single vectorized ``detect_vectors`` calls, flushing on
  batch size or linger, whichever triggers first;
* :mod:`repro.runtime.cache` — an LRU+TTL verdict cache keyed by the
  quantized feature vector plus the parsed user-agent equivalence
  class, invalidated on every model swap;
* :mod:`repro.runtime.pool` — a worker pool draining a bounded queue
  with backpressure (typed ``Overloaded`` sheds, graceful drain);
* :mod:`repro.runtime.stats` — the runtime metrics registry (batch-size
  distribution, queue depth, cache hit rate, per-stage latency
  percentiles) rendered into ``/metrics``;
* :mod:`repro.runtime.service` — :class:`RuntimeScoringService`, the
  drop-in wiring of all four behind the ``score_wire`` contract;
* :mod:`repro.runtime.bench` — the per-request vs batched vs cached
  throughput driver shared by the CLI and the benchmark suite.
"""

from repro.runtime.batcher import MicroBatcher
from repro.runtime.cache import VerdictCache, quantize_vector
from repro.runtime.pool import Overloaded, WorkerPool, overloaded_verdict
from repro.runtime.service import (
    PendingVerdict,
    RuntimeConfig,
    RuntimeScoringService,
)
from repro.runtime.stats import RuntimeStats, percentile

__all__ = [
    "MicroBatcher",
    "Overloaded",
    "PendingVerdict",
    "RuntimeConfig",
    "RuntimeScoringService",
    "RuntimeStats",
    "VerdictCache",
    "WorkerPool",
    "overloaded_verdict",
    "percentile",
    "quantize_vector",
]
