"""The shared fast-ingest engine: wire contract enforcement, memoized.

Extracted from :class:`~repro.runtime.service.RuntimeScoringService` so
that every component sitting in front of a model — the in-process
runtime, and the router side of the shared-memory shard transport
(:mod:`repro.cluster.transport`) — enforces the wire contract with the
*same* code path.  The contract itself is defined by
:class:`~repro.service.ingest.PayloadValidator`; this class mirrors its
checks in the identical order while skipping work that is provably
redundant for repeated byte patterns:

* the **user-agent memo** maps raw UA strings to their parsed
  equivalence class (``vendor-version``), bounded and cleared whole;
* the **wire-suffix memo** keys the bytes *after* the session id:
  live payloads from the same browser differ only in ``sid``, so a
  repeated suffix skips the JSON parse and the static checks entirely.

Parity with ``PayloadValidator.ingest_wire`` is pinned by the runtime
test suite; anything structurally unusual (escaped session ids,
reordered keys, duplicate ``sid`` keys) bails to the full parse.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.browsers.useragent import UserAgentError, parse_user_agent
from repro.fingerprint.script import MAX_PAYLOAD_BYTES
from repro.service.ingest import (
    MAX_FEATURE_VALUE,
    MAX_SESSION_ID_LENGTH,
    MAX_SUSPICIOUS_GLOBALS,
    PayloadValidator,
    RejectReason,
)

__all__ = ["WireIngest"]

_UA_MEMO_LIMIT = 4096
_WIRE_MEMO_LIMIT = 8192

_MISSING = object()  # memo sentinel: cached values may be None

_SID_PREFIX = b'{"sid":"'

# Escapes or control bytes in a byte-sliced sid change its JSON meaning
# (the slice would not round-trip), so their presence forces the full
# parse.  One C-level scan replaces an ``in`` scan plus a ``min()``.
_SID_UNSAFE = re.compile(rb"[\x00-\x1f\\]").search


class WireIngest:
    """Wire-contract enforcement with parse memoization.

    One instance fronts one validator (one quarantine log, one dedup
    window).  :meth:`ingest` is the whole surface: bytes in,
    ``(reject_reason, fields)`` out, where ``fields`` is
    ``(session_id, user_agent, values, suspicious_globals, ua_key)``
    for admitted payloads.

    Stateless checks run lock-free; the shared mutable state (the
    quarantine log, the dedup window, the counters) is touched under
    one lock, so concurrent producers serialize on a few dict and set
    operations rather than on a JSON parse.
    """

    __slots__ = (
        "validator",
        "_lock",
        "_ua_class",
        "_wire_memo",
        "requests_total",
        "rejected_count",
    )

    def __init__(self, validator: Optional[PayloadValidator] = None) -> None:
        self.validator = validator if validator is not None else PayloadValidator()
        self._lock = threading.Lock()
        self._ua_class: Dict[str, Optional[str]] = {}
        self._wire_memo: Dict[bytes, tuple] = {}
        self.requests_total = 0
        self.rejected_count = 0

    # ------------------------------------------------------------------

    def ingest(
        self, wire: bytes
    ) -> Tuple[Optional[RejectReason], Optional[tuple]]:
        """Validate one wire payload; admit or reject.

        Identical checks in identical order to
        ``PayloadValidator.ingest_wire``, sharing the validator's
        quarantine log and dedup window.  The fast path fires when the
        wire opens with the canonical ``{"sid":"<id>"`` shape and its
        suffix has been fully parsed and statically validated before:
        then only the session-id checks and the dedup window run.
        """
        prepared = self._prepare(wire)
        if len(prepared) != 5:
            return self._reject(prepared[0], prepared[1])
        return self._admit(*prepared)

    def ingest_many(
        self, wires: Sequence[bytes]
    ) -> List[Union[RejectReason, tuple]]:
        """Bulk :meth:`ingest`: one validator-lock round trip per chunk.

        Returns one outcome per wire, in order: the admitted fields
        tuple, or the :class:`RejectReason` (its detail already
        recorded in the quarantine log).  One fused loop applies the
        stateless checks (:meth:`_prepare`), the dedup window, and the
        counters under a single lock acquisition — a 256-wire chunk
        pays one lock, not 256, and no per-wire wrapper tuples.
        Outcomes are wire-for-wire identical to :meth:`ingest` loops.
        """
        prepare = self._prepare
        validator = self.validator
        record = validator.quarantine.record
        duplicate = RejectReason.DUPLICATE
        window, seen_ids, seen_set = validator.dedup_state()
        maxlen = seen_ids.maxlen
        ids_append = seen_ids.append
        seen_add = seen_set.add
        seen_discard = seen_set.discard
        out: List[Union[RejectReason, tuple]] = []
        append = out.append
        accepted = 0
        rejected = 0
        with self._lock:
            for wire in wires:
                prepared = prepare(wire)
                if len(prepared) == 5:
                    if window:
                        session_id = prepared[0]
                        if session_id in seen_set:
                            record(duplicate, session_id)
                            rejected += 1
                            append(duplicate)
                            continue
                        if len(seen_ids) == maxlen:
                            seen_discard(seen_ids[0])
                        ids_append(session_id)
                        seen_add(session_id)
                    accepted += 1
                    append(prepared)
                else:
                    reason = prepared[0]
                    record(reason, prepared[1])
                    rejected += 1
                    append(reason)
            validator.accepted_count += accepted
            self.requests_total += len(wires)
            self.rejected_count += rejected
        return out

    def _prepare(self, wire: bytes):
        """The lock-free half of :meth:`ingest`: every stateless check.

        Returns the 5-tuple ``fields`` for candidates that still need
        the locked dedup-window pass, or the 2-tuple
        ``(reason, detail_str)`` for statically-invalid wires — the
        caller discriminates on ``len``.
        """
        validator = self.validator
        if len(wire) > MAX_PAYLOAD_BYTES:
            return (
                RejectReason.OVERSIZED,
                f"{len(wire)} bytes > {MAX_PAYLOAD_BYTES}",
            )
        sid_bytes: Optional[bytes] = None
        suffix: Optional[bytes] = None
        if wire.startswith(_SID_PREFIX):
            quote = wire.find(b'"', 8)
            if quote >= 8:
                raw_sid = wire[8:quote]
                tail = wire[quote:]
                # Memo first: keys are only ever inserted after a full
                # parse validated the suffix (including that it holds
                # no second "sid" key), so a hit re-checks just the
                # sid.  Escapes or control bytes in the sid change its
                # JSON meaning — those still force the full parse.
                cached = self._wire_memo.get(tail)
                if cached is not None:
                    if _SID_UNSAFE(raw_sid) is None:
                        try:
                            session_id = raw_sid.decode("utf-8")
                        except UnicodeDecodeError:
                            session_id = None
                        if session_id is not None:
                            if len(session_id) > MAX_SESSION_ID_LENGTH or (
                                not session_id
                            ):
                                return (
                                    RejectReason.BAD_SESSION_ID,
                                    session_id[:80],
                                )
                            return (session_id,) + cached
                elif _SID_UNSAFE(raw_sid) is None:
                    if b'"sid"' not in tail:
                        sid_bytes = raw_sid
                        suffix = tail
        try:
            body = json.loads(wire.decode("utf-8"))
            session_id = str(body["sid"])
            user_agent = str(body["ua"])
            values = tuple(map(int, body["f"]))
            raw_globs = body.get("g", _MISSING)
            globs = (
                () if raw_globs is _MISSING
                else tuple(str(g) for g in raw_globs)
            )
        except (ValueError, KeyError, TypeError) as exc:
            return RejectReason.MALFORMED, str(exc)[:120]
        if not session_id or len(session_id) > MAX_SESSION_ID_LENGTH:
            return RejectReason.BAD_SESSION_ID, session_id[:80]
        if len(values) != validator.expected_features:
            return (
                RejectReason.WRONG_ARITY,
                f"{len(values)} values, expected {validator.expected_features}",
            )
        # C-loop min/max instead of a per-element genexpr; the arity
        # check above guarantees ``values`` is non-empty.
        if min(values) < 0 or max(values) > MAX_FEATURE_VALUE:
            return RejectReason.VALUE_RANGE, "feature out of range"
        if len(globs) > MAX_SUSPICIOUS_GLOBALS:
            return (
                RejectReason.GLOBALS_OVERFLOW,
                f"{len(globs)} suspicious globals",
            )
        ua_key = self.ua_class_of(user_agent)
        if ua_key is None:
            return RejectReason.UNPARSEABLE_UA, user_agent[:80]
        # Memoize the statically-validated suffix — but only when the
        # byte-sliced sid round-trips to the JSON-parsed one, proving
        # the slice boundaries are exactly right for this shape.
        if suffix is not None and session_id.encode("utf-8") == sid_bytes:
            memo = self._wire_memo
            if len(memo) >= _WIRE_MEMO_LIMIT:
                memo.clear()
            memo[suffix] = (user_agent, values, globs, ua_key)
        return session_id, user_agent, values, globs, ua_key

    # ------------------------------------------------------------------

    def _admit(
        self,
        session_id: str,
        user_agent: str,
        values: Tuple[int, ...],
        globs: Tuple[str, ...],
        ua_key: str,
    ) -> Tuple[Optional[RejectReason], Optional[tuple]]:
        """Dedup window + counters for a statically-valid payload."""
        validator = self.validator
        with self._lock:
            if validator.is_duplicate(session_id):
                validator.quarantine.record(RejectReason.DUPLICATE, session_id)
                self.requests_total += 1
                self.rejected_count += 1
                return RejectReason.DUPLICATE, None
            validator.remember(session_id)
            validator.accepted_count += 1
            self.requests_total += 1
        return None, (session_id, user_agent, values, globs, ua_key)

    def _reject(
        self, reason: RejectReason, detail: str
    ) -> Tuple[RejectReason, None]:
        with self._lock:
            self.validator.quarantine.record(reason, detail)
            self.requests_total += 1
            self.rejected_count += 1
        return reason, None

    def ua_class_of(self, user_agent: str) -> Optional[str]:
        """Memoized raw UA string → parsed equivalence class (ua_key).

        Reads are lock-free: dict get/set are atomic under the GIL and
        a racing recompute is benign (same result, idempotent insert).
        """
        memo = self._ua_class
        ua_key = memo.get(user_agent, _MISSING)
        if ua_key is not _MISSING:
            return ua_key
        try:
            ua_key = parse_user_agent(user_agent).key()
        except UserAgentError:
            ua_key = None
        if len(memo) >= _UA_MEMO_LIMIT:
            memo.clear()
        memo[user_agent] = ua_key
        return ua_key

    def clear_ua_memo(self) -> None:
        """Drop the UA memo (model swaps clear derived parse state)."""
        with self._lock:
            self._ua_class.clear()
