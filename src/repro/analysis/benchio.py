"""Shared benchmark-result serialization.

Every ``benchmarks/bench_*.py`` script that persists results writes the
same JSON shape through :func:`write_bench_json`: the caller's
``benchmark`` / ``config`` / ``cells`` stay top-level (CI smoke asserts
key off them), and the writer stamps a schema version plus the git
commit the numbers were measured at — without that, a directory of
``BENCH_*.json`` files is a pile of unattributable numbers.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["BENCH_SCHEMA_VERSION", "git_commit", "write_bench_json"]

BENCH_SCHEMA_VERSION = 1


def git_commit() -> Optional[str]:
    """The current commit hash, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def write_bench_json(
    path: Union[str, Path],
    benchmark: str,
    config: Dict,
    cells: List[Dict],
    extra: Optional[Dict] = None,
) -> Dict:
    """Write one benchmark document; returns what was written.

    ``cells`` is the measurement matrix — one dict per measured cell,
    each carrying at least a ``cell`` name.  ``extra`` merges additional
    top-level keys (derived summaries, pass/fail gates) after the
    standard ones, so a benchmark can keep the keys its CI asserts on.
    """
    for cell in cells:
        if "cell" not in cell:
            raise ValueError("every bench cell needs a 'cell' name")
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_commit": git_commit(),
        "benchmark": benchmark,
        "config": config,
        "cells": cells,
    }
    if extra:
        document.update(extra)
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document
