"""Shared benchmark-result serialization.

Every ``benchmarks/bench_*.py`` script that persists results writes the
same JSON shape through :func:`write_bench_json`: the caller's
``benchmark`` / ``config`` / ``cells`` stay top-level (CI smoke asserts
key off them), and the writer stamps a schema version plus the git
commit the numbers were measured at — without that, a directory of
``BENCH_*.json`` files is a pile of unattributable numbers.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "diff_bench_documents",
    "git_commit",
    "read_bench_json",
    "write_bench_json",
]

BENCH_SCHEMA_VERSION = 1

# Metric-name suffixes/tokens treated as throughput (higher is better)
# by ``benchio diff``.  Everything else is reported but never gates.
_THROUGHPUT_MARKERS = ("_per_s", "_wps", "throughput")


def git_commit() -> Optional[str]:
    """The current commit hash, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


def write_bench_json(
    path: Union[str, Path],
    benchmark: str,
    config: Dict,
    cells: List[Dict],
    extra: Optional[Dict] = None,
) -> Dict:
    """Write one benchmark document; returns what was written.

    ``cells`` is the measurement matrix — one dict per measured cell,
    each carrying at least a ``cell`` name.  ``extra`` merges additional
    top-level keys (derived summaries, pass/fail gates) after the
    standard ones, so a benchmark can keep the keys its CI asserts on.
    """
    for cell in cells:
        if "cell" not in cell:
            raise ValueError("every bench cell needs a 'cell' name")
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "git_commit": git_commit(),
        "benchmark": benchmark,
        "config": config,
        "cells": cells,
    }
    if extra:
        document.update(extra)
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return document


def read_bench_json(path: Union[str, Path]) -> Dict:
    """Load one benchmark document (no schema coercion, just parse)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def _is_throughput(name: str) -> bool:
    return any(marker in name for marker in _THROUGHPUT_MARKERS)


def diff_bench_documents(
    old: Dict,
    new: Dict,
    max_regress: float = 0.15,
    lower_is_better: Sequence[str] = (),
    extra_gates: Sequence[str] = (),
) -> Dict:
    """Compare two documents of the same benchmark, cell by cell.

    Cells are matched by their ``cell`` name (falling back to position
    for pre-schema artifacts).  Every numeric metric both sides share is
    reported; metrics whose name marks them as throughput
    (``*_per_s``, ``*_wps``, ``*throughput*``) additionally *gate*: a
    drop of more than ``max_regress`` (relative) is a regression.

    ``extra_gates`` adds named metrics to the gated set with the same
    higher-is-better direction; names in ``lower_is_better`` gate in the
    opposite direction (a *rise* of more than ``max_regress`` regresses
    — latency, lag, error rates).  A name in both is lower-is-better.

    Returns ``{"rows": [...], "regressions": [...]}`` where each row is
    ``(cell, metric, old, new, rel_change, gated)``.
    """
    lower = set(lower_is_better)
    gates = set(extra_gates) | lower
    old_cells = {
        cell.get("cell", f"#{i}"): cell
        for i, cell in enumerate(old.get("cells", []))
    }
    new_cells = {
        cell.get("cell", f"#{i}"): cell
        for i, cell in enumerate(new.get("cells", []))
    }
    rows = []
    regressions = []
    for name in old_cells:
        if name not in new_cells:
            continue
        before, after = old_cells[name], new_cells[name]
        for metric in before:
            if metric == "cell" or metric not in after:
                continue
            a, b = before[metric], after[metric]
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                continue
            if isinstance(a, bool) or isinstance(b, bool):
                continue
            change = (b - a) / a if a else (0.0 if b == a else float("inf"))
            gated = _is_throughput(metric) or metric in gates
            rows.append((name, metric, a, b, change, gated))
            if not gated:
                continue
            if metric in lower:
                if change > max_regress:
                    regressions.append(
                        f"{name}.{metric}: {a:g} -> {b:g} "
                        f"({100 * change:+.1f}% > +{100 * max_regress:.0f}%,"
                        " lower is better)"
                    )
            elif change < -max_regress:
                regressions.append(
                    f"{name}.{metric}: {a:g} -> {b:g} "
                    f"({100 * change:+.1f}% < -{100 * max_regress:.0f}%)"
                )
    return {"rows": rows, "regressions": regressions}


def _cmd_diff(args) -> int:
    old = read_bench_json(args.old)
    new = read_bench_json(args.new)
    if old.get("benchmark") != new.get("benchmark"):
        print(
            f"benchmark mismatch: {old.get('benchmark')} vs "
            f"{new.get('benchmark')}"
        )
        return 2
    result = diff_bench_documents(
        old,
        new,
        max_regress=args.max_regress,
        lower_is_better=args.lower_is_better,
        extra_gates=args.gate,
    )
    shown = 0
    for cell, metric, a, b, change, gated in result["rows"]:
        if args.all or gated or abs(change) > 0.01:
            marker = " *" if gated else ""
            print(f"  {cell:<24} {metric:<22} {a:>12g} -> {b:>12g}  {100 * change:+7.1f}%{marker}")
            shown += 1
    if not shown:
        print("  (no differing metrics)")
    if result["regressions"]:
        print(f"\nREGRESSION ({len(result['regressions'])} gated metric(s) fell):")
        for line in result["regressions"]:
            print(f"  {line}")
        return 1
    print(f"\nok: no gated metric fell more than {100 * args.max_regress:.0f}%")
    return 0


def main(argv=None) -> int:
    """``python -m repro.analysis.benchio`` entry point."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis.benchio",
        description="shared bench-artifact tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    diff = sub.add_parser(
        "diff", help="compare two bench JSONs; exit 1 on throughput regression"
    )
    diff.add_argument("old")
    diff.add_argument("new")
    diff.add_argument(
        "--max-regress",
        type=float,
        default=0.15,
        help="relative throughput drop tolerated before failing (default 0.15)",
    )
    diff.add_argument(
        "--all", action="store_true", help="print unchanged metrics too"
    )
    diff.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="METRIC",
        help="additionally gate this metric, higher is better (repeatable)",
    )
    diff.add_argument(
        "--lower-is-better",
        action="append",
        default=[],
        metavar="METRIC",
        help="gate this metric in the falling direction — a rise beyond "
        "--max-regress fails (latency, lag, error rates; repeatable)",
    )
    args = parser.parse_args(argv)
    return _cmd_diff(args)


if __name__ == "__main__":
    import sys

    sys.exit(main())
