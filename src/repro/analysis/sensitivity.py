"""Sensitivity sweeps (Appendix-4) and the Appendix-5 protocol.

The sweeps share one expensive preprocessing pass (scale + outlier
filter) and re-run only the stage under study, so Table 10's eight
cluster counts do not pay for eight Isolation Forests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.preprocessing import Preprocessor
from repro.ml.elbow import elbow_analysis, select_k_elbow
from repro.ml.kmeans import KMeans
from repro.ml.metrics import majority_cluster_accuracy
from repro.ml.pca import PCA
from repro.ml.scaler import StandardScaler

__all__ = [
    "ProtocolResult",
    "clustering_protocol",
    "sweep_clusters",
    "sweep_features",
    "sweep_pca",
]


@dataclass(frozen=True)
class ProtocolResult:
    """Outcome of the full Section 6.4 recipe on one feature matrix."""

    n_rows: int
    n_features: int
    n_pca_components: int
    k: int
    accuracy: float


def _prepare(
    matrix: np.ndarray,
    ua_keys: Sequence[str],
    config: PipelineConfig,
) -> Tuple[np.ndarray, List[str]]:
    """Shared preprocessing: scale, drop outliers, return train data."""
    preprocessor = Preprocessor(config)
    scaled, inliers = preprocessor.fit(np.asarray(matrix, dtype=float))
    keys = [k for k, keep in zip(ua_keys, inliers) if keep]
    return scaled[inliers], keys


def sweep_clusters(
    matrix: np.ndarray,
    ua_keys: Sequence[str],
    ks: Sequence[int] = (5, 7, 9, 11, 13, 15, 17, 19),
    config: PipelineConfig = PipelineConfig(),
) -> List[Tuple[int, float]]:
    """Table 10: accuracy vs number of clusters (28 features, 7 PCs)."""
    train, keys = _prepare(matrix, ua_keys, config)
    projected = PCA(n_components=config.n_pca_components).fit_transform(train)
    rows = []
    for k in ks:
        kmeans = KMeans(
            n_clusters=int(k),
            n_init=config.kmeans_n_init,
            random_state=config.random_state,
        ).fit(projected)
        rows.append((int(k), majority_cluster_accuracy(keys, kmeans.labels_)))
    return rows


def sweep_pca(
    matrix: np.ndarray,
    ua_keys: Sequence[str],
    components: Sequence[int] = (6, 7, 8, 9, 10),
    config: PipelineConfig = PipelineConfig(),
    elbow_ks: Sequence[int] = tuple(range(2, 20)),
) -> List[Tuple[int, int, float]]:
    """Table 11: (components, optimal k, accuracy) per PCA width."""
    train, keys = _prepare(matrix, ua_keys, config)
    rows = []
    for n_components in components:
        projected = PCA(n_components=int(n_components)).fit_transform(train)
        elbow = elbow_analysis(
            projected, elbow_ks, n_init=2, random_state=config.random_state
        )
        best_k = select_k_elbow(elbow, min_k=5)
        kmeans = KMeans(
            n_clusters=best_k,
            n_init=config.kmeans_n_init,
            random_state=config.random_state,
        ).fit(projected)
        rows.append(
            (int(n_components), best_k, majority_cluster_accuracy(keys, kmeans.labels_))
        )
    return rows


def sweep_features(
    matrix: np.ndarray,
    ua_keys: Sequence[str],
    feature_steps: Sequence[Sequence[int]],
    config: PipelineConfig = PipelineConfig(),
    elbow_ks: Sequence[int] = tuple(range(2, 20)),
) -> List[Tuple[int, int, int, float]]:
    """Table 12: grow the feature set and re-run the full recipe.

    ``feature_steps`` lists column-index sets (e.g. the 28 canonical
    columns, then 32, 36, 42 following the standard-deviation ranking).
    Returns ``(n_features, n_pca, k, accuracy)`` per step.
    """
    data = np.asarray(matrix, dtype=float)
    rows = []
    for columns in feature_steps:
        columns = list(columns)
        step_config = config.with_overrides(
            scale_columns=list(range(len(columns)))
        )
        train, keys = _prepare(data[:, columns], ua_keys, step_config)
        full_pca = PCA().fit(train)
        cumulative = full_pca.cumulative_variance_ratio()
        n_components = int(np.searchsorted(cumulative, 0.985) + 1)
        n_components = max(2, min(n_components, train.shape[1]))
        projected = PCA(n_components=n_components).fit_transform(train)
        elbow = elbow_analysis(
            projected, elbow_ks, n_init=2, random_state=config.random_state
        )
        best_k = select_k_elbow(elbow, min_k=5)
        kmeans = KMeans(
            n_clusters=best_k,
            n_init=config.kmeans_n_init,
            random_state=config.random_state,
        ).fit(projected)
        rows.append(
            (
                len(columns),
                n_components,
                best_k,
                majority_cluster_accuracy(keys, kmeans.labels_),
            )
        )
    return rows


def clustering_protocol(
    matrix: np.ndarray,
    labels: Sequence[str],
    variance_target: float = 0.985,
    elbow_ks: Sequence[int] = tuple(range(2, 18)),
    random_state: int = 1337,
    max_k: Optional[int] = None,
    min_k: int = 4,
) -> ProtocolResult:
    """The Appendix-5 recipe: scale, PCA to a variance target, elbow, fit.

    Used to cluster the flattened fine-grained fingerprints (Tables 13
    and 14) with exactly the same steps as the coarse-grained model.
    """
    data = np.asarray(matrix, dtype=float)
    if data.shape[0] != len(labels):
        raise ValueError("matrix rows and labels must align")
    scaled = StandardScaler().fit_transform(data)
    full_pca = PCA().fit(scaled)
    cumulative = full_pca.cumulative_variance_ratio()
    n_components = int(np.searchsorted(cumulative, variance_target) + 1)
    n_components = max(2, min(n_components, min(scaled.shape) - 1))
    projected = PCA(n_components=n_components).fit_transform(scaled)

    usable_ks = [k for k in elbow_ks if k < data.shape[0]]
    elbow = elbow_analysis(projected, usable_ks, n_init=2, random_state=random_state)
    best_k = select_k_elbow(elbow, min_k=min_k)
    if max_k is not None:
        best_k = min(best_k, max_k)
    kmeans = KMeans(n_clusters=best_k, n_init=4, random_state=random_state).fit(
        projected
    )
    return ProtocolResult(
        n_rows=data.shape[0],
        n_features=data.shape[1],
        n_pca_components=n_components,
        k=best_k,
        accuracy=majority_cluster_accuracy(list(labels), kmeans.labels_),
    )
