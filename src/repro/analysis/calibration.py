"""Calibration audit of the traffic simulator.

The reproduction's Table 4-7 results are only meaningful if the
synthetic FinOrg traffic actually carries the paper's marginals.  This
module audits a generated dataset against the published deployment
statistics — base tag rates, release diversity, fraud prevalence,
privacy marginals — and reports any drift.  It runs in CI (tests) so a
future change to the generator cannot silently decalibrate the
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.privacy import anonymity_figure, unique_fingerprint_share
from repro.traffic.dataset import Dataset

__all__ = ["CalibrationCheck", "audit_traffic"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One audited marginal."""

    name: str
    paper_value: str
    measured: str
    within_tolerance: bool


def _check(name: str, paper: str, measured: float, low: float, high: float,
           fmt: str = "{:.4f}") -> CalibrationCheck:
    return CalibrationCheck(
        name=name,
        paper_value=paper,
        measured=fmt.format(measured),
        within_tolerance=low <= measured <= high,
    )


def audit_traffic(dataset: Dataset) -> List[CalibrationCheck]:
    """Audit a training-window dataset against the paper's marginals."""
    if len(dataset) < 1_000:
        raise ValueError("calibration audit needs at least 1000 sessions")
    n = len(dataset)
    rates = dataset.tag_rates()
    checks = [
        _check(
            "Untrusted_IP base rate", "51%",
            rates["untrusted_ip"], 0.47, 0.55,
        ),
        _check(
            "Untrusted_Cookie base rate", "49%",
            rates["untrusted_cookie"], 0.45, 0.53,
        ),
        _check(
            "ATO base rate", "0.43%",
            rates["ato"], 0.002, 0.008,
        ),
        _check(
            "distinct browser releases", "113",
            float(len(dataset.distinct_releases())), 60, 220, fmt="{:.0f}",
        ),
        _check(
            "detectable (cat 1/2) fraud prevalence", "~0.3% (inferred)",
            float(dataset.is_detectable_fraud().sum()) / n, 0.0005, 0.01,
        ),
        _check(
            "unique fingerprint share", "0.3%",
            unique_fingerprint_share(dataset), 0.0, 0.02,
        ),
    ]
    survey = anonymity_figure(dataset)
    large_sets = survey.get("51-500", 0.0) + survey.get("501-+", 0.0)
    checks.append(
        _check(
            "fingerprints in anonymity sets > 50", "95.6%",
            large_sets, 80.0, 100.0, fmt="{:.1f}",
        )
    )
    return checks
