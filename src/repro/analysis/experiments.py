"""One driver per paper table/figure.

Every experiment in the paper's evaluation has a function here returning
an :class:`ExperimentResult` (headers + rows + notes).  The benchmark
harness (``benchmarks/``) and the CLI (``python -m repro``) both call
these drivers, so the regenerated numbers are identical no matter how
they are invoked.

Dataset sizes honour the ``REPRO_SESSIONS`` environment variable
(default: the paper's 205,000); heavy artifacts (the training dataset,
the trained pipeline, the candidate-space dataset) are cached per
process so a full experiment suite trains once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from datetime import date
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.privacy import anonymity_figure, feature_entropy_table
from repro.analysis.reporting import render_table
from repro.analysis.sensitivity import (
    clustering_protocol,
    sweep_clusters,
    sweep_features,
    sweep_pca,
)
from repro.baselines.clientjs import ClientJSTool
from repro.baselines.fingerprintjs import FingerprintJSTool
from repro.baselines.flatten import encode_for_clustering
from repro.baselines.perf import measure_tools
from repro.browsers.profiles import BrowserProfile
from repro.browsers.useragent import Vendor, parse_ua_key
from repro.core.feature_selection import select_features
from repro.core.pipeline import BrowserPolygraph
from repro.fingerprint.candidates import generate_candidates
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import FEATURE_SPECS
from repro.fraudbrowsers.catalog import fraud_browser
from repro.fraudbrowsers.profiles import build_experiment_profiles
from repro.ml.elbow import elbow_analysis, select_k_elbow
from repro.ml.pca import PCA
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator

__all__ = [
    "ExperimentResult",
    "default_n_sessions",
    "fig2_pca_variance",
    "fig3_fig4_elbow",
    "fig5_anonymity",
    "table10_cluster_sensitivity",
    "table11_pca_sensitivity",
    "table12_feature_sensitivity",
    "table13_finegrained_windows",
    "table14_finegrained_macos",
    "table2_performance",
    "table3_cluster_table",
    "table4_flagging",
    "table5_fraud_browsers",
    "table6_drift",
    "table7_entropy",
    "table9_k6",
    "trained_pipeline",
    "training_dataset",
]

_MACOS_TOKEN = "Macintosh; Intel Mac OS X 10_15_7"

_CACHE: Dict[tuple, object] = {}


@dataclass
class ExperimentResult:
    """Rendered outcome of one paper artifact."""

    experiment: str
    headers: List[str]
    rows: List[tuple]
    notes: List[str] = field(default_factory=list)

    def render(self, float_digits: int = 2) -> str:
        """Paper-style plain-text rendering."""
        body = render_table(
            self.headers, self.rows, title=self.experiment, float_digits=float_digits
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body


def default_n_sessions() -> int:
    """Training size: ``REPRO_SESSIONS`` env var or the paper's 205k."""
    return int(os.environ.get("REPRO_SESSIONS", "205000"))


# ----------------------------------------------------------------------
# cached heavy artifacts


def training_dataset(n_sessions: Optional[int] = None, seed: int = 7) -> Dataset:
    """The Mar-Jul training window (cached per size/seed)."""
    n = n_sessions or default_n_sessions()
    key = ("training", n, seed)
    if key not in _CACHE:
        config = TrafficConfig(seed=seed).scaled(n)
        _CACHE[key] = TrafficSimulator(config).generate()
    return _CACHE[key]  # type: ignore[return-value]


def trained_pipeline(
    n_sessions: Optional[int] = None, seed: int = 7
) -> BrowserPolygraph:
    """Browser Polygraph fitted on :func:`training_dataset` (cached)."""
    n = n_sessions or default_n_sessions()
    key = ("pipeline", n, seed)
    if key not in _CACHE:
        _CACHE[key] = BrowserPolygraph().fit(training_dataset(n, seed))
    return _CACHE[key]  # type: ignore[return-value]


def drift_dataset(n_sessions: Optional[int] = None, seed: int = 11) -> Dataset:
    """The late-July to early-November drift window (cached)."""
    n = n_sessions or max(20_000, default_n_sessions() // 4)
    key = ("drift", n, seed)
    if key not in _CACHE:
        config = TrafficConfig(
            start=date(2023, 7, 20), end=date(2023, 11, 10), seed=seed
        ).scaled(n)
        _CACHE[key] = TrafficSimulator(config).generate()
    return _CACHE[key]  # type: ignore[return-value]


def candidate_dataset(n_sessions: int = 30_000, seed: int = 5) -> Dataset:
    """Traffic collected over the full 513-candidate feature space."""
    key = ("candidates", n_sessions, seed)
    if key not in _CACHE:
        candidates = generate_candidates()
        config = TrafficConfig(seed=seed).scaled(n_sessions)
        _CACHE[key] = TrafficSimulator(
            config, specs=candidates.all_specs
        ).generate()
    return _CACHE[key]  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Table 2


def table2_performance(repeats: int = 5) -> ExperimentResult:
    """Service time and storage per tool (paper Table 2)."""
    costs = measure_tools(repeats=repeats)
    rows = [
        (c.tool, round(c.avg_service_time_ms, 2), c.avg_payload_bytes)
        for c in costs
    ]
    return ExperimentResult(
        "Table 2: collection cost per tool",
        ["Tool", "Avg service time (ms)", "Payload (bytes)"],
        rows,
        notes=[
            "absolute times are host-dependent; the ordering and the "
            "payload-size gap are the paper's claim",
        ],
    )


# ----------------------------------------------------------------------
# Figures 2-4


def fig2_pca_variance(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Cumulative PCA variance by component count (paper Figure 2)."""
    pipeline = trained_pipeline(n_sessions)
    dataset = training_dataset(n_sessions)
    scaled = pipeline.cluster_model.preprocessor.transform(dataset.matrix())
    pca = PCA().fit(scaled)
    cumulative = np.cumsum(pca.explained_variance_ratio_)
    rows = [(i + 1, float(c)) for i, c in enumerate(cumulative[:12])]
    components_985 = int(np.searchsorted(cumulative, 0.985) + 1)
    return ExperimentResult(
        "Figure 2: cumulative PCA variance",
        ["Components", "Cumulative variance"],
        rows,
        notes=[f"components needed for 98.5% variance: {components_985} (paper: 7)"],
    )


def fig3_fig4_elbow(n_sessions: Optional[int] = None) -> ExperimentResult:
    """WCSS and relative WCSS vs k (paper Figures 3 and 4)."""
    pipeline = trained_pipeline(n_sessions)
    dataset = training_dataset(n_sessions)
    scaled = pipeline.cluster_model.preprocessor.transform(dataset.matrix())
    projected = pipeline.cluster_model.pca.transform(scaled)
    result = elbow_analysis(projected, range(2, 20), n_init=4, random_state=99)
    rows = [
        (k, float(w), float(g)) for k, w, g in result.as_rows()
    ]
    chosen = select_k_elbow(result, min_k=5)
    return ExperimentResult(
        "Figures 3/4: elbow analysis (WCSS and relative gain vs k)",
        ["k", "WCSS", "Relative gain"],
        rows,
        notes=[f"elbow-selected k: {chosen} (paper: 11)"],
    )


# ----------------------------------------------------------------------
# Tables 3 and 9


def _cluster_table_rows(pipeline: BrowserPolygraph) -> List[tuple]:
    rows = []
    for cluster, uas in sorted(pipeline.cluster_table.items()):
        if not uas:
            rows.append((cluster, "(no majority user-agent)"))
            continue
        by_vendor: Dict[str, List[int]] = {}
        for key in uas:
            parsed = parse_ua_key(key)
            by_vendor.setdefault(parsed.vendor.value.capitalize(), []).append(
                parsed.version
            )
        summary = ", ".join(
            f"{vendor} {min(versions)}-{max(versions)}"
            for vendor, versions in sorted(by_vendor.items())
        )
        rows.append((cluster, summary))
    return rows


def table3_cluster_table(n_sessions: Optional[int] = None) -> ExperimentResult:
    """User-agents per cluster at k=11 (paper Table 3)."""
    pipeline = trained_pipeline(n_sessions)
    return ExperimentResult(
        "Table 3: user-agents assigned to clusters (k=11)",
        ["Cluster", "User-agents"],
        _cluster_table_rows(pipeline),
        notes=[
            f"training accuracy: {pipeline.accuracy:.4f} (paper: 0.996)",
            f"outliers removed: {pipeline.cluster_model.n_outliers_} rows",
        ],
    )


def table9_k6(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Same model at the less-optimal k=6 (paper Table 9)."""
    key = ("pipeline-k6", n_sessions or default_n_sessions())
    if key not in _CACHE:
        from repro.core.config import PipelineConfig

        config = PipelineConfig(n_clusters=6)
        _CACHE[key] = BrowserPolygraph(config).fit(training_dataset(n_sessions))
    pipeline: BrowserPolygraph = _CACHE[key]  # type: ignore[assignment]
    return ExperimentResult(
        "Table 9: user-agents assigned to clusters (k=6)",
        ["Cluster", "User-agents"],
        _cluster_table_rows(pipeline),
        notes=[f"training accuracy: {pipeline.accuracy:.4f}"],
    )


# ----------------------------------------------------------------------
# Table 4


def table4_flagging(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Tag enrichment among flagged sessions (paper Table 4)."""
    pipeline = trained_pipeline(n_sessions)
    dataset = training_dataset(n_sessions)
    report = pipeline.detect(dataset)

    def rates(mask: np.ndarray) -> tuple:
        n = max(1, int(mask.sum()))
        return (
            100.0 * float(dataset.untrusted_ip[mask].sum()) / n,
            100.0 * float(dataset.untrusted_cookie[mask].sum()) / n,
            100.0 * float(dataset.ato[mask].sum()) / n,
            int(mask.sum()),
        )

    rng = np.random.default_rng(0)
    random_mask = np.zeros(len(dataset), dtype=bool)
    random_mask[
        rng.choice(len(dataset), size=report.n_flagged, replace=False)
    ] = True

    categories = [
        ("All users", np.ones(len(dataset), dtype=bool)),
        ("Flagged (all)", report.flagged),
        ("Flagged, risk factor > 1", report.risk_over(1)),
        ("Flagged, risk factor > 4", report.risk_over(4)),
        ("Randomly-chosen", random_mask),
    ]
    rows = [
        (label, round(ip, 1), round(cookie, 1), round(ato, 2), count)
        for label, mask in categories
        for ip, cookie, ato, count in [rates(mask)]
    ]
    return ExperimentResult(
        "Table 4: Untrusted_IP / Untrusted_Cookie / ATO rates per batch",
        ["Category", "Untrusted_IP %", "Untrusted_Cookie %", "ATO %", "Sessions"],
        rows,
        notes=[f"flagged sessions: {report.n_flagged} (paper: 897 of 205k)"],
    )


# ----------------------------------------------------------------------
# Table 5


def table5_fraud_browsers(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Fraud-browser detection recall and risk factors (paper Table 5)."""
    pipeline = trained_pipeline(n_sessions)
    collector = FingerprintCollector(FEATURE_SPECS)
    rows = []
    for label in ("GoLogin-3.3.23", "Incogniton-3.2.7.7", "Octo Browser-1.10", "Sphere-1.3"):
        product = fraud_browser(label)
        profiles = build_experiment_profiles(product, pipeline.cluster_table)
        flagged, risk_factors = 0, []
        for profile in profiles:
            vector = collector.collect(product.environment(profile))
            result = pipeline.detect_session(vector, profile.claimed.key())
            if result.flagged:
                flagged += 1
                risk_factors.append(result.risk_factor)
        total = len(profiles)
        rows.append(
            (
                label,
                flagged,
                total - flagged,
                round(float(np.mean(risk_factors)), 2) if risk_factors else 0.0,
                f"{100.0 * flagged / total:.0f}%" if total else "-",
            )
        )
    return ExperimentResult(
        "Table 5: fraud browser detection",
        ["Browser", "Flagged", "Not-flagged", "Avg risk factor", "Recall"],
        rows,
    )


# ----------------------------------------------------------------------
# Table 6


def table6_drift(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Drift analysis of the Jul-Nov releases (paper Table 6)."""
    pipeline = trained_pipeline(n_sessions)
    dataset = drift_dataset()
    records = [
        r for r in pipeline.drift_report(dataset) if r.n_sessions >= 20
    ]
    threshold = pipeline.config.drift_accuracy_threshold
    rows = [
        (
            parse_ua_key(r.ua_key).display(),
            r.cluster,
            r.baseline_cluster if r.baseline_cluster is not None else "-",
            round(100.0 * r.accuracy, 2),
            "RETRAIN" if r.retrain_needed(threshold) else "",
        )
        for r in records
    ]
    return ExperimentResult(
        "Table 6: drift analysis (late July - early November)",
        ["Browser", "Cluster", "Baseline cluster", "Accuracy %", "Signal"],
        rows,
        notes=[f"retraining triggered: {pipeline.retrain_needed(records)}"],
    )


# ----------------------------------------------------------------------
# Table 7 and Figure 5


def table7_entropy(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Entropy of the collected attributes (paper Table 7)."""
    dataset = training_dataset(n_sessions)
    rows = [
        (name, round(entropy, 2), round(normalized, 2))
        for name, entropy, normalized in feature_entropy_table(dataset)
    ]
    return ExperimentResult(
        "Table 7: attribute entropy (sorted by normalized entropy)",
        ["Attribute", "Entropy", "Normalized entropy"],
        rows,
        notes=["the user-agent must stay the most diverse attribute"],
    )


def fig5_anonymity(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Anonymity-set size distribution (paper Figure 5)."""
    dataset = training_dataset(n_sessions)
    survey = anonymity_figure(dataset)
    rows = [(bucket, round(share, 2)) for bucket, share in survey.items()]
    return ExperimentResult(
        "Figure 5: share of fingerprints per anonymity-set size",
        ["Anonymity-set size", "% of fingerprints"],
        rows,
        notes=["paper: 0.3% unique, 95.6% in sets larger than 50"],
    )


# ----------------------------------------------------------------------
# Appendix-4 sensitivity (Tables 10-12)


def table10_cluster_sensitivity(
    n_sessions: Optional[int] = None,
) -> ExperimentResult:
    """Accuracy vs number of clusters (paper Table 10)."""
    dataset = training_dataset(n_sessions)
    rows = [
        (k, round(100.0 * acc, 2))
        for k, acc in sweep_clusters(dataset.matrix(), list(dataset.ua_keys))
    ]
    return ExperimentResult(
        "Table 10: sensitivity to the number of clusters",
        ["Clusters", "Model accuracy %"],
        rows,
    )


def table11_pca_sensitivity(n_sessions: Optional[int] = None) -> ExperimentResult:
    """Accuracy vs PCA component count (paper Table 11)."""
    dataset = training_dataset(n_sessions)
    rows = [
        (components, k, round(100.0 * acc, 2))
        for components, k, acc in sweep_pca(dataset.matrix(), list(dataset.ua_keys))
    ]
    return ExperimentResult(
        "Table 11: sensitivity to the number of PCA components",
        ["PCA components", "Optimal clusters", "Model accuracy %"],
        rows,
    )


def table12_feature_sensitivity(
    n_candidate_sessions: int = 30_000,
) -> ExperimentResult:
    """Accuracy vs feature count (paper Table 12).

    Follows the paper's recipe: take the candidate-space traffic, rank
    the proper deviation features by standard deviation, then grow the
    feature set from the canonical 28 by four features at a time.
    """
    dataset = candidate_dataset(n_candidate_sessions)
    candidates = generate_candidates()
    report = select_features(dataset.matrix(), candidates.all_specs)
    spec_index = {spec.key(): i for i, spec in enumerate(candidates.all_specs)}

    base = [spec_index[s.key()] for s in report.selected]
    ranked_beyond = [
        spec_index[f"dev:{name}"]
        for name, _ in report.deviation_ranking[22:36]
    ]
    # The paper grows the set 28 -> 32 -> 36 -> 42 (+4, +4, +6).
    steps = [base]
    added_names = []
    previous = 0
    for size in (4, 8, 14):
        extra = ranked_beyond[:size]
        steps.append(base + extra)
        added_names.append(
            [candidates.all_specs[i].interface for i in extra[previous:]]
        )
        previous = size

    rows = []
    results = sweep_features(dataset.matrix(), list(dataset.ua_keys), steps)
    for idx, (n_features, n_pca, k, acc) in enumerate(results):
        added = "(Table 8 set)" if idx == 0 else ", ".join(added_names[idx - 1])
        rows.append((n_features, added, n_pca, k, round(100.0 * acc, 2)))
    return ExperimentResult(
        "Table 12: sensitivity to the number of features",
        ["Features", "Added features", "PCA", "k", "Model accuracy %"],
        rows,
        notes=[f"candidate traffic: {len(dataset)} sessions over 513 features"],
    )


# ----------------------------------------------------------------------
# Appendix-5 (Tables 13 and 14)


def _lab_grid(os_token: Optional[str]) -> List[BrowserProfile]:
    profiles = []
    for vendor in (Vendor.CHROME, Vendor.EDGE, Vendor.FIREFOX):
        for version in range(96, 115):
            if vendor is Vendor.FIREFOX and version == 92:
                continue
            profiles.append(BrowserProfile(vendor, version, os_token=os_token))
    return profiles


def _finegrained_comparison(
    title: str, os_token: Optional[str], installs_per_profile: int = 4
) -> ExperimentResult:
    profiles = _lab_grid(os_token)
    labels = []
    polygraph_rows = []
    fpjs_docs, cjs_docs = [], []
    collector = FingerprintCollector(FEATURE_SPECS)
    fpjs, cjs = FingerprintJSTool(), ClientJSTool()
    for profile in profiles:
        for install in range(installs_per_profile):
            labels.append(profile.ua_key())
            polygraph_rows.append(collector.collect(profile.environment()))
            fpjs_docs.append(fpjs.run(profile, install_seed=install).fingerprint)
            cjs_docs.append(cjs.run(profile, install_seed=install).fingerprint)

    results = []
    polygraph_matrix = np.vstack(polygraph_rows)
    results.append(
        ("Browser Polygraph", clustering_protocol(polygraph_matrix, labels))
    )
    fpjs_matrix, _ = encode_for_clustering(fpjs_docs)
    results.append(("FingerprintJS", clustering_protocol(fpjs_matrix, labels)))
    cjs_matrix, _ = encode_for_clustering(cjs_docs)
    results.append(("ClientJS", clustering_protocol(cjs_matrix, labels)))

    rows = [
        (
            name,
            outcome.n_rows,
            outcome.n_features,
            outcome.n_pca_components,
            outcome.k,
            round(100.0 * outcome.accuracy, 2),
        )
        for name, outcome in results
    ]
    return ExperimentResult(
        title,
        ["Technique", "Dataset", "Features", "PCA", "k", "Model accuracy %"],
        rows,
        notes=["coarse-grained features should out-cluster both baselines"],
    )


def table13_finegrained_windows() -> ExperimentResult:
    """Coarse vs fine-grained clustering on Windows (paper Table 13)."""
    return _finegrained_comparison(
        "Table 13: clustering comparison (Windows)", os_token=None
    )


def table14_finegrained_macos() -> ExperimentResult:
    """Coarse vs fine-grained clustering on macOS (paper Table 14).

    Mirrors the paper's smaller macOS dataset (320 vs 430 rows) by
    probing fewer installs per release.
    """
    return _finegrained_comparison(
        "Table 14: clustering comparison (macOS)",
        os_token=_MACOS_TOKEN,
        installs_per_profile=3,
    )
