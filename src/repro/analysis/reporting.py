"""Fixed-width table rendering for benchmark and CLI output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table"]


def _format_cell(value, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    float_digits: int = 2,
) -> str:
    """Render an aligned plain-text table (paper-style)."""
    formatted: List[List[str]] = [
        [_format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in formatted:
        for idx, cell in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in formatted)
    return "\n".join(parts)
