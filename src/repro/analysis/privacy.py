"""Privacy analysis (paper Section 7.4).

Two measurements establish that the 28 coarse-grained features cannot
track individual users:

* **Anonymity sets** (Figure 5) — the share of fingerprints in
  anonymity sets of various sizes; the paper finds only 0.3% unique
  fingerprints and 95.6% in sets larger than 50.
* **Feature entropy** (Table 7) — Shannon and normalized entropy per
  collected attribute; the user-agent itself remains the most diverse
  attribute, so the features add no identifiability beyond what the
  user-agent already exposes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ml.metrics import (
    anonymity_survey,
    normalized_shannon_entropy,
    shannon_entropy,
)
from repro.traffic.dataset import Dataset

__all__ = ["anonymity_figure", "feature_entropy_table", "unique_fingerprint_share"]


def _fingerprints(dataset: Dataset) -> List[Tuple]:
    return [tuple(row) for row in dataset.features.tolist()]


def anonymity_figure(dataset: Dataset) -> Dict[str, float]:
    """Percentage of fingerprints per anonymity-set-size bucket (Fig 5)."""
    return anonymity_survey(_fingerprints(dataset))


def unique_fingerprint_share(dataset: Dataset) -> float:
    """Fraction of fingerprints that are unique in the dataset."""
    survey = anonymity_figure(dataset)
    return survey.get("1", 0.0) / 100.0


def feature_entropy_table(
    dataset: Dataset, top_n: int = 8
) -> List[Tuple[str, float, float]]:
    """Table 7: entropy per attribute, user-agent included, sorted.

    Returns ``(name, entropy_bits, normalized_entropy)`` rows sorted by
    normalized entropy, truncated to ``top_n`` (the paper lists the
    user-agent plus the seven most diverse features).
    """
    rows: List[Tuple[str, float, float]] = []
    ua_values = dataset.ua_keys.tolist()
    rows.append(
        (
            "user-agent",
            shannon_entropy(ua_values),
            normalized_shannon_entropy(ua_values),
        )
    )
    names = dataset.feature_names or [
        f"feature_{i}" for i in range(dataset.n_features)
    ]
    for idx, name in enumerate(names):
        column = dataset.features[:, idx].tolist()
        rows.append(
            (name, shannon_entropy(column), normalized_shannon_entropy(column))
        )
    rows.sort(key=lambda row: -row[2])
    return rows[:top_n]
