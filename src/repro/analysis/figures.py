"""Plain-text figure rendering.

The paper's figures (2: cumulative PCA variance, 3: WCSS elbow, 4:
relative WCSS, 5: anonymity sets) are line/bar charts.  This repository
has no plotting dependency, so these renderers draw them as aligned
ASCII charts — good enough to *read the shape* in a terminal or a CI
log, which is what the reproduction needs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["bar_chart", "line_chart", "render_figures"]


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the largest value."""
    if not items:
        raise ValueError("nothing to chart")
    peak = max(value for _, value in items)
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        filled = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{label.rjust(label_width)} | "
            f"{'#' * filled}{' ' * (width - filled)} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    height: int = 12,
    title: str = "",
    y_label: str = "",
) -> str:
    """Scatter-style line chart on a character grid."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("nothing to chart")
    width = max(2 * len(xs), 20)
    y_low, y_high = min(ys), max(ys)
    span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    x_low, x_high = min(xs), max(xs)
    x_span = (x_high - x_low) or 1.0
    for x, y in zip(xs, ys):
        column = round_half((width - 1) * (x - x_low) / x_span)
        row = round_half((height - 1) * (1.0 - (y - y_low) / span))
        grid[row][column] = "*"

    lines = [title] if title else []
    lines.append(f"{y_high:>12.3f} |")
    for row_cells in grid:
        lines.append(" " * 12 + " |" + "".join(row_cells))
    lines.append(f"{y_low:>12.3f} |" + "-" * width)
    lines.append(
        " " * 14 + f"x: {x_low:g} .. {x_high:g}"
        + (f"   y: {y_label}" if y_label else "")
    )
    return "\n".join(lines)


def round_half(value: float) -> int:
    """Round to nearest int, ties away from zero (stable across floats)."""
    return int(value + (0.5 if value >= 0 else -0.5))


def render_figures(
    pca_cumulative: Sequence[float],
    elbow_rows: Sequence[Tuple[int, float, float]],
    anonymity: Dict[str, float],
) -> str:
    """Render Figures 2-5 as one text block."""
    parts: List[str] = []
    parts.append(
        line_chart(
            list(range(1, len(pca_cumulative) + 1)),
            list(pca_cumulative),
            title="Figure 2: cumulative PCA variance vs components",
            y_label="cumulative variance",
        )
    )
    ks = [row[0] for row in elbow_rows]
    parts.append(
        line_chart(
            ks,
            [row[1] for row in elbow_rows],
            title="Figure 3: WCSS vs number of clusters",
            y_label="WCSS",
        )
    )
    parts.append(
        line_chart(
            ks,
            [row[2] for row in elbow_rows],
            title="Figure 4: relative WCSS gain vs number of clusters",
            y_label="relative gain",
        )
    )
    parts.append(
        bar_chart(
            list(anonymity.items()),
            title="Figure 5: % of fingerprints per anonymity-set size",
            unit="%",
        )
    )
    return "\n\n".join(parts)
