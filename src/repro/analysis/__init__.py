"""Evaluation analyses: privacy, sensitivity sweeps, experiment drivers.

* :mod:`repro.analysis.privacy` — anonymity sets and feature entropy
  (paper Figure 5 and Table 7);
* :mod:`repro.analysis.sensitivity` — the Appendix-4 sweeps over k, PCA
  components and feature count, plus the Appendix-5 clustering protocol
  used for the fine-grained comparison;
* :mod:`repro.analysis.experiments` — one driver per paper table/figure,
  shared by the benchmark harness and the CLI;
* :mod:`repro.analysis.reporting` — fixed-width table rendering.
"""

from repro.analysis.figures import bar_chart, line_chart, render_figures
from repro.analysis.privacy import anonymity_figure, feature_entropy_table
from repro.analysis.reporting import render_table
from repro.analysis.sensitivity import (
    ProtocolResult,
    clustering_protocol,
    sweep_clusters,
    sweep_features,
    sweep_pca,
)

__all__ = [
    "ProtocolResult",
    "anonymity_figure",
    "bar_chart",
    "clustering_protocol",
    "feature_entropy_table",
    "line_chart",
    "render_figures",
    "render_table",
    "sweep_clusters",
    "sweep_features",
    "sweep_pca",
]
