"""Release calendar for the browsers in scope.

The drift-detection experiments (Sections 6.6 and 7.3) are anchored to
real release dates: the designated evaluation dates fall "a few days
after the latest Firefox release, with the newest Chrome and Edge
versions released approximately one to two weeks earlier".  This module
reconstructs an approximate calendar from a handful of well-known anchor
releases with linear interpolation in between — the same fidelity the
paper needs (ordering and spacing, not day-exact dates).

Dates are plain :class:`datetime.date` objects; the traffic generator
samples sessions between two dates and weights versions by their age at
the session date.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from datetime import date, timedelta
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

from repro.browsers.useragent import Vendor
from repro.jsengine.evolution import Engine

__all__ = [
    "Release",
    "ReleaseCalendar",
    "default_calendar",
    "engine_for_vendor",
]


@dataclass(frozen=True)
class Release:
    """One browser release: vendor, major version, and ship date."""

    vendor: Vendor
    version: int
    released: date

    def key(self) -> str:
        """Canonical ``vendor-version`` label."""
        return f"{self.vendor.value}-{self.version}"


# Anchor (version, date) pairs; versions between anchors interpolate
# linearly.  Sources: Chromium/Gecko release archives (approximate).
_CHROME_ANCHORS: Tuple[Tuple[int, date], ...] = (
    (59, date(2017, 6, 5)),
    (70, date(2018, 10, 16)),
    (80, date(2020, 2, 4)),
    (90, date(2021, 4, 14)),
    (96, date(2021, 11, 15)),  # six-week cadence ends
    (110, date(2023, 2, 7)),  # four-week cadence
    (114, date(2023, 5, 30)),
    (115, date(2023, 7, 18)),
    (116, date(2023, 8, 15)),
    (117, date(2023, 9, 12)),
    (118, date(2023, 10, 10)),
    (119, date(2023, 10, 31)),
)

_FIREFOX_ANCHORS: Tuple[Tuple[int, date], ...] = (
    (46, date(2016, 4, 26)),
    (57, date(2017, 11, 14)),
    (70, date(2019, 10, 22)),
    (85, date(2021, 1, 26)),
    (100, date(2022, 5, 3)),
    (110, date(2023, 2, 14)),
    (114, date(2023, 6, 6)),
    (115, date(2023, 7, 4)),
    (116, date(2023, 8, 1)),
    (117, date(2023, 8, 29)),
    (118, date(2023, 9, 26)),
    (119, date(2023, 10, 24)),
)

# Legacy Edge shipped with Windows 10 feature updates; Chromium Edge
# tracks the Chrome schedule with a few days of lag.
_EDGEHTML_RELEASES: Tuple[Tuple[int, date], ...] = (
    (17, date(2018, 4, 30)),
    (18, date(2018, 11, 13)),
    (19, date(2019, 5, 21)),
)
_EDGE_CHROMIUM_FIRST = 79
_EDGE_LAG_DAYS = 6


def engine_for_vendor(vendor: Vendor, version: int) -> Engine:
    """Engine family implementing a given vendor release."""
    if vendor is Vendor.FIREFOX:
        return Engine.GECKO
    if vendor is Vendor.EDGE and version < _EDGE_CHROMIUM_FIRST:
        return Engine.EDGEHTML
    return Engine.CHROMIUM


def _interpolate(anchors: Sequence[Tuple[int, date]], version: int) -> date:
    versions = [v for v, _ in anchors]
    if version <= versions[0]:
        return anchors[0][1]
    if version >= versions[-1]:
        # Extrapolate at the cadence of the last anchor gap.
        (v0, d0), (v1, d1) = anchors[-2], anchors[-1]
        per_version = (d1 - d0) / (v1 - v0)
        return d1 + per_version * (version - versions[-1])
    idx = bisect_right(versions, version) - 1
    (v0, d0), (v1, d1) = anchors[idx], anchors[idx + 1]
    fraction = (version - v0) / (v1 - v0)
    return d0 + timedelta(days=(d1 - d0).days * fraction)


class ReleaseCalendar:
    """All releases in scope, queryable by vendor, version, or date."""

    def __init__(
        self,
        chrome_range: Tuple[int, int] = (59, 119),
        firefox_range: Tuple[int, int] = (46, 119),
        edge_chromium_range: Tuple[int, int] = (79, 119),
    ) -> None:
        self._releases: Dict[Tuple[Vendor, int], Release] = {}
        for version in range(chrome_range[0], chrome_range[1] + 1):
            self._add(Vendor.CHROME, version, _interpolate(_CHROME_ANCHORS, version))
        for version in range(firefox_range[0], firefox_range[1] + 1):
            self._add(
                Vendor.FIREFOX, version, _interpolate(_FIREFOX_ANCHORS, version)
            )
        for version, released in _EDGEHTML_RELEASES:
            self._add(Vendor.EDGE, version, released)
        for version in range(edge_chromium_range[0], edge_chromium_range[1] + 1):
            chrome_date = _interpolate(_CHROME_ANCHORS, version)
            self._add(
                Vendor.EDGE, version, chrome_date + timedelta(days=_EDGE_LAG_DAYS)
            )

    def _add(self, vendor: Vendor, version: int, released: date) -> None:
        self._releases[(vendor, version)] = Release(vendor, version, released)

    def release(self, vendor: Vendor, version: int) -> Release:
        """Look up one release; raises ``KeyError`` for out-of-scope ones."""
        return self._releases[(Vendor(vendor), int(version))]

    def has_release(self, vendor: Vendor, version: int) -> bool:
        """Whether the (vendor, version) pair is modeled."""
        return (Vendor(vendor), int(version)) in self._releases

    def all_releases(self) -> List[Release]:
        """Every modeled release, sorted by date then vendor."""
        return sorted(
            self._releases.values(), key=lambda r: (r.released, r.vendor.value, r.version)
        )

    def released_before(self, vendor: Vendor, cutoff: date) -> List[Release]:
        """Releases of ``vendor`` shipped strictly before ``cutoff``."""
        return sorted(
            (
                release
                for (v, _), release in self._releases.items()
                if v is Vendor(vendor) and release.released < cutoff
            ),
            key=lambda r: r.version,
        )

    def latest_before(self, vendor: Vendor, cutoff: date) -> Release:
        """Most recent ``vendor`` release before ``cutoff``."""
        candidates = self.released_before(vendor, cutoff)
        if not candidates:
            raise KeyError(f"no {Vendor(vendor).value} release before {cutoff}")
        return candidates[-1]

    def new_releases_between(self, start: date, end: date) -> List[Release]:
        """Releases shipped in ``[start, end)`` across all vendors."""
        return [
            release
            for release in self.all_releases()
            if start <= release.released < end
        ]


@lru_cache(maxsize=1)
def default_calendar() -> ReleaseCalendar:
    """Shared calendar covering the paper's full study window."""
    return ReleaseCalendar()
