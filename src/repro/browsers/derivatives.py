"""Derivative browsers: Brave and Tor.

Section 6.3 singles out two legitimate browsers whose user-agents
impersonate their upstream:

* **Brave** reports a user-agent identical to the matching Chrome
  release, but its privacy shields trim several interface surfaces, so
  its coarse-grained fingerprint deviates from genuine Chrome.  In the
  paper's data these sessions are a source of *benign* cluster
  mismatches.
* **Tor Browser** reports the Firefox ESR user-agent it derives from —
  which lags the Firefox release train by roughly a year — while its
  hardened configuration zeroes many APIs.  The paper excluded Tor from
  the analysis; we model it so that exclusion can be exercised.
"""

from __future__ import annotations

from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine

__all__ = [
    "BRAVE_COUNT_ADJUSTMENTS",
    "TOR_ZEROED_INTERFACES",
    "brave_environment",
    "tor_environment",
    "tor_claimed_firefox_version",
]

# Brave's shields remove or trim fingerprinting-adjacent surfaces.  The
# offsets are sized to land Brave a few standard deviations away from
# genuine Chrome in the final feature space — far enough that k-means
# gives Brave sessions their own satellite cluster (one of the two
# clusters of Table 3 that hold no majority user-agent).
BRAVE_COUNT_ADJUSTMENTS = {
    "Element": -5,
    "Document": -4,
    "SVGElement": -3,
    "CanvasRenderingContext2D": -6,
    "WebGL2RenderingContext": -9,
    "WebGLRenderingContext": -7,
    "AudioContext": -3,
    "HTMLVideoElement": -2,
    "Navigator": -3,
}

TOR_ZEROED_INTERFACES = (
    "ServiceWorker",
    "ServiceWorkerContainer",
    "ServiceWorkerRegistration",
    "RTCIceCandidate",
    "RTCPeerConnection",
    "RTCRtpReceiver",
    "RTCRtpSender",
    "RTCRtpTransceiver",
    "RTCDataChannel",
    "WebGL2RenderingContext",
    "CanvasRenderingContext2D",
    "AudioContext",
    "BaseAudioContext",
)

_TOR_ESR_LAG = 13  # Tor Browser tracks the ESR line ~a year behind.


def brave_environment(chrome_version: int) -> JSEnvironment:
    """Brave build matching a Chrome version (and claiming its UA)."""
    return JSEnvironment(
        Engine.CHROMIUM,
        chrome_version,
        count_adjustments=BRAVE_COUNT_ADJUSTMENTS,
    )


def tor_claimed_firefox_version(firefox_current: int) -> int:
    """Firefox ESR version a contemporary Tor Browser claims."""
    return max(1, firefox_current - _TOR_ESR_LAG)


def tor_environment(firefox_current: int) -> JSEnvironment:
    """Tor Browser surface for the ESR base of ``firefox_current``."""
    return JSEnvironment(
        Engine.GECKO,
        tor_claimed_firefox_version(firefox_current),
        zeroed_interfaces=TOR_ZEROED_INTERFACES,
        count_adjustments={"Element": -6, "Document": -4},
    )
