"""User-agent string construction and parsing.

The paper's risk analysis (Algorithm 1) needs two things from a
user-agent: the *vendor* and the *major version*.  This module formats
realistic desktop user-agent strings for the browsers in scope and
parses them back, including the corner cases the paper calls out:

* Edge 79+ appends an ``Edg/`` token to an otherwise Chrome-identical
  string, while legacy Edge 17-19 uses ``Edge/`` with an EdgeHTML build
  number;
* Brave is *deliberately indistinguishable* from Chrome at the
  user-agent level — that is exactly why it shows up as a benign
  mismatch in the paper's data;
* Tor Browser reports the Firefox ESR user-agent it is built from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = [
    "ParsedUserAgent",
    "UserAgentError",
    "Vendor",
    "format_user_agent",
    "parse_ua_key",
    "parse_user_agent",
    "ua_key",
]


class UserAgentError(ValueError):
    """Raised when a user-agent string cannot be interpreted."""


class Vendor(str, Enum):
    """Browser vendors distinguishable from the user-agent string."""

    CHROME = "chrome"
    EDGE = "edge"
    FIREFOX = "firefox"


# EdgeHTML build numbers shipped with legacy Edge releases.
_EDGEHTML_BUILDS = {17: 17134, 18: 17763, 19: 18363}

_WINDOWS_TOKEN = "Windows NT 10.0; Win64; x64"
_MACOS_TOKEN = "Macintosh; Intel Mac OS X 10_15_7"

_FIREFOX_RE = re.compile(r"\bFirefox/(\d+)\.")
_EDG_RE = re.compile(r"\bEdg/(\d+)\.")
_EDGEHTML_RE = re.compile(r"\bEdge/(\d+)\.")
_CHROME_RE = re.compile(r"\bChrome/(\d+)\.")


@dataclass(frozen=True)
class ParsedUserAgent:
    """Vendor + major version extracted from a user-agent string."""

    vendor: Vendor
    version: int
    raw: str

    def key(self) -> str:
        """Canonical short form, e.g. ``chrome-112`` (used as a label)."""
        return f"{self.vendor.value}-{self.version}"

    def display(self) -> str:
        """Human-readable form, e.g. ``Chrome 112``."""
        return f"{self.vendor.value.capitalize()} {self.version}"


def format_user_agent(
    vendor: Vendor, version: int, os_token: Optional[str] = None
) -> str:
    """Build a realistic desktop user-agent string.

    ``os_token`` defaults to Windows 10; pass
    ``"Macintosh; Intel Mac OS X 10_15_7"`` for the macOS experiments of
    Appendix-5.
    """
    vendor = Vendor(vendor)
    version = int(version)
    if version <= 0:
        raise UserAgentError(f"version must be positive, got {version}")
    os_part = os_token or _WINDOWS_TOKEN

    if vendor is Vendor.FIREFOX:
        return (
            f"Mozilla/5.0 ({os_part}; rv:{version}.0) "
            f"Gecko/20100101 Firefox/{version}.0"
        )
    webkit = (
        f"Mozilla/5.0 ({os_part}) AppleWebKit/537.36 "
        f"(KHTML, like Gecko) Chrome/{version}.0.0.0 Safari/537.36"
    )
    if vendor is Vendor.CHROME:
        return webkit
    # Edge: legacy EdgeHTML releases use the Edge/ token over a spoofed
    # Chrome 64; Chromium-based releases append Edg/.
    if version in _EDGEHTML_BUILDS:
        build = _EDGEHTML_BUILDS[version]
        return (
            f"Mozilla/5.0 ({os_part}) AppleWebKit/537.36 "
            f"(KHTML, like Gecko) Chrome/64.0.3282.140 Safari/537.36 "
            f"Edge/{version}.{build}"
        )
    return f"{webkit} Edg/{version}.0.0.0"


def parse_user_agent(raw: str) -> ParsedUserAgent:
    """Extract vendor and major version from a user-agent string.

    Token precedence matters: ``Edg``/``Edge`` must win over the
    ``Chrome`` token they embed, and ``Firefox`` wins over the ``Gecko``
    token present in WebKit strings.
    """
    if not raw or not raw.strip():
        raise UserAgentError("empty user-agent string")

    match = _EDGEHTML_RE.search(raw)
    if match:
        return ParsedUserAgent(Vendor.EDGE, int(match.group(1)), raw)
    match = _EDG_RE.search(raw)
    if match:
        return ParsedUserAgent(Vendor.EDGE, int(match.group(1)), raw)
    match = _FIREFOX_RE.search(raw)
    if match:
        return ParsedUserAgent(Vendor.FIREFOX, int(match.group(1)), raw)
    match = _CHROME_RE.search(raw)
    if match:
        return ParsedUserAgent(Vendor.CHROME, int(match.group(1)), raw)
    raise UserAgentError(f"unrecognized user-agent: {raw[:120]!r}")


def ua_key(vendor: Vendor, version: int) -> str:
    """Short canonical label for a (vendor, version) pair."""
    return f"{Vendor(vendor).value}-{int(version)}"


def parse_ua_key(key: str) -> ParsedUserAgent:
    """Inverse of :func:`ua_key`; ``raw`` holds a synthesized UA string."""
    try:
        vendor_text, version_text = key.rsplit("-", 1)
        vendor = Vendor(vendor_text)
        version = int(version_text)
    except (ValueError, KeyError) as exc:
        raise UserAgentError(f"bad user-agent key: {key!r}") from exc
    return ParsedUserAgent(vendor, version, format_user_agent(vendor, version))
