"""Legitimate browser universe: releases, user-agents, configurations.

This subpackage models the population of genuine browsers the paper
trains on — Chrome 59-119, Firefox 46-119, Edge 17-19 and 79-119 — plus
the derivative browsers (Brave, Tor) whose user-agents masquerade as
their upstream while their API surfaces subtly differ (Section 6.3).
"""

from repro.browsers.configs import (
    BENIGN_PERTURBATIONS,
    Perturbation,
    perturbation_by_name,
)
from repro.browsers.derivatives import brave_environment, tor_environment
from repro.browsers.profiles import BrowserProfile
from repro.browsers.releases import (
    ReleaseCalendar,
    default_calendar,
    engine_for_vendor,
)
from repro.browsers.useragent import ParsedUserAgent, Vendor, format_user_agent, parse_user_agent

__all__ = [
    "BENIGN_PERTURBATIONS",
    "BrowserProfile",
    "ParsedUserAgent",
    "Perturbation",
    "ReleaseCalendar",
    "Vendor",
    "brave_environment",
    "default_calendar",
    "engine_for_vendor",
    "format_user_agent",
    "parse_user_agent",
    "perturbation_by_name",
    "tor_environment",
]
