"""Browser configuration and extension perturbations.

Section 6.3 of the paper documents how user choices distort the
coarse-grained features of otherwise legitimate browsers:

* Firefox ``about:config`` switches — disabling Service Workers zeroes
  the whole ``ServiceWorker`` interface family; toggling
  ``dom.element.transform-getters.enabled`` shifts ``Element``;
* Chrome extensions — the DuckDuckGo extension injects two custom
  properties into ``Element``;
* privacy hardening — resist-fingerprinting style settings that disable
  recent APIs wholesale, which makes a browser *look older* than its
  user-agent claims (the main source of benign low-risk flags in the
  paper's deployment);
* staged field trials — Chrome 119's partial rollout that degrades
  clustering accuracy to 97.22% in Table 6.

Each :class:`Perturbation` describes its effect declaratively so it can
be applied either to a single :class:`~repro.jsengine.environment.JSEnvironment`
or vectorized over feature matrices by the traffic generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.browsers.useragent import Vendor
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine

__all__ = [
    "BENIGN_PERTURBATIONS",
    "Perturbation",
    "perturbation_by_name",
]


@dataclass(frozen=True)
class Perturbation:
    """A benign distortion of the JavaScript surface.

    Attributes
    ----------
    name:
        Stable identifier (used in logs and tests).
    engine:
        Engine family the perturbation applies to; ``None`` means any.
    probability:
        Share of that engine's sessions carrying the perturbation in the
        simulated FinOrg traffic.
    count_adjustments:
        Structural-count deltas per interface.
    zeroed_interfaces:
        Interfaces removed outright.
    downgrade_versions:
        If positive, feature values are computed as if the browser were
        this many versions older (privacy hardening disables recent
        APIs); applied before the other effects.
    min_version / max_version:
        Version window in which the perturbation exists (field trials).
    """

    name: str
    engine: Optional[Engine] = None
    vendor: Optional[Vendor] = None
    probability: float = 0.0
    count_adjustments: Dict[str, int] = field(default_factory=dict)
    zeroed_interfaces: Tuple[str, ...] = ()
    downgrade_versions: int = 0
    min_version: Optional[int] = None
    max_version: Optional[int] = None

    def applies_to(
        self, engine: Engine, version: int, vendor: Optional[Vendor] = None
    ) -> bool:
        """Whether this perturbation can occur on the given release.

        ``vendor`` further narrows vendor-specific rollouts (Chrome
        field trials never reach Edge builds of the same engine).
        """
        if self.engine is not None and engine is not self.engine:
            return False
        if (
            self.vendor is not None
            and vendor is not None
            and vendor is not self.vendor
        ):
            return False
        if self.min_version is not None and version < self.min_version:
            return False
        if self.max_version is not None and version > self.max_version:
            return False
        return True

    def apply(self, environment: JSEnvironment) -> JSEnvironment:
        """Produce a perturbed copy of ``environment``."""
        if not self.applies_to(environment.engine, environment.version):
            return environment
        base = environment
        if self.downgrade_versions > 0:
            base = JSEnvironment(
                environment.engine,
                max(1, environment.version - self.downgrade_versions),
                model=environment.model,
                count_adjustments=environment.count_adjustments,
                zeroed_interfaces=environment.zeroed_interfaces,
            )
        return base.with_overrides(
            count_adjustments=self.count_adjustments,
            zeroed_interfaces=self.zeroed_interfaces,
        )


_SERVICE_WORKER_FAMILY = (
    "ServiceWorker",
    "ServiceWorkerContainer",
    "ServiceWorkerRegistration",
)
_PAYMENT_DRM_FAMILY = (
    "PaymentRequest",
    "PaymentResponse",
    "PaymentAddress",
    "MediaKeys",
    "PushManager",
    "PushSubscription",
    "PushSubscriptionOptions",
    "Presentation",
    "PresentationAvailability",
    "PresentationConnection",
    "PresentationConnectionAvailableEvent",
    "PresentationConnectionCloseEvent",
    "PresentationConnectionList",
    "PresentationReceiver",
    "PresentationRequest",
)
_WEBRTC_FAMILY = (
    "RTCIceCandidate",
    "RTCPeerConnection",
    "RTCRtpReceiver",
    "RTCRtpSender",
    "RTCRtpTransceiver",
    "RTCDataChannel",
    "RTCDataChannelEvent",
    "RTCDTMFSender",
    "RTCDTMFToneChangeEvent",
    "RTCCertificate",
    "RTCSessionDescription",
    "RTCStatsReport",
    "RTCTrackEvent",
    "RTCPeerConnectionIceEvent",
)

BENIGN_PERTURBATIONS: Tuple[Perturbation, ...] = (
    # Firefox about:config -------------------------------------------------
    Perturbation(
        name="ff-disable-serviceworkers",
        engine=Engine.GECKO,
        probability=0.020,
        zeroed_interfaces=_SERVICE_WORKER_FAMILY,
    ),
    Perturbation(
        name="ff-transform-getters",
        engine=Engine.GECKO,
        probability=0.008,
        count_adjustments={"Element": -2},
    ),
    Perturbation(
        name="ff-privacy-hardened",
        engine=Engine.GECKO,
        probability=0.0040,
        downgrade_versions=10,
        zeroed_interfaces=_SERVICE_WORKER_FAMILY + _WEBRTC_FAMILY,
        min_version=101,
    ),
    # Enterprise builds with feature rollouts frozen by policy: the
    # surface lags the user-agent by a few releases, producing the
    # benign low-risk-factor mismatches Section 7.1 describes.
    Perturbation(
        name="chromium-enterprise-frozen",
        engine=Engine.CHROMIUM,
        probability=0.0030,
        downgrade_versions=6,
        min_version=90,
    ),
    # Chrome extensions ----------------------------------------------------
    Perturbation(
        name="ext-duckduckgo",
        engine=Engine.CHROMIUM,
        probability=0.004,
        count_adjustments={"Element": 2},
    ),
    Perturbation(
        name="ext-adblock",
        engine=Engine.CHROMIUM,
        probability=0.003,
        count_adjustments={"Element": 1, "Document": 1},
    ),
    # WebRTC disabled via enterprise policy / extension on any engine ------
    Perturbation(
        name="disable-webrtc",
        probability=0.010,
        zeroed_interfaces=_WEBRTC_FAMILY,
    ),
    # Privacy/enterprise policies that switch off payment, DRM, push and
    # presentation APIs wholesale — the reason these interfaces are
    # excluded from the final feature set as configuration-sensitive.
    Perturbation(
        name="disable-payment-drm",
        probability=0.007,
        zeroed_interfaces=_PAYMENT_DRM_FAMILY,
    ),
    # Chrome 119 field-trial kill switch (Section 7.3 / Table 6): a
    # server-side rollback disabled the post-112 API batches for a
    # cohort of Chrome 119 users, exposing an era-older surface and
    # degrading the release's clustering accuracy below the 98% drift
    # threshold — the Chrome half of the paper's October retrain signal.
    Perturbation(
        name="chrome-119-field-trial",
        engine=Engine.CHROMIUM,
        vendor=Vendor.CHROME,
        probability=0.035,
        downgrade_versions=7,
        min_version=119,
        max_version=119,
    ),
)


def perturbation_by_name(name: str) -> Perturbation:
    """Look up a benign perturbation by its identifier."""
    for perturbation in BENIGN_PERTURBATIONS:
        if perturbation.name == name:
            return perturbation
    raise KeyError(f"unknown perturbation: {name!r}")
