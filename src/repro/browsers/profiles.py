"""Browser profiles: (vendor, version, perturbations) -> environment.

A :class:`BrowserProfile` is the unit of the paper's lab experiments —
"a browser instance" on BrowserStack or a local install.  It knows its
claimed user-agent and can materialize the :class:`JSEnvironment` the
collection script will run against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.browsers.configs import Perturbation
from repro.browsers.releases import engine_for_vendor
from repro.browsers.useragent import Vendor, format_user_agent
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import EvolutionModel

__all__ = ["BrowserProfile"]


@dataclass(frozen=True)
class BrowserProfile:
    """A concrete legitimate browser installation.

    Parameters
    ----------
    vendor, version:
        The release; the user-agent is derived from it truthfully.
    perturbations:
        Benign configuration/extension perturbations active on this
        installation.
    os_token:
        Operating-system token embedded in the user-agent (Windows by
        default; the Appendix-5 experiments also use macOS).
    """

    vendor: Vendor
    version: int
    perturbations: Tuple[Perturbation, ...] = ()
    os_token: Optional[str] = None

    def user_agent(self) -> str:
        """The truthful user-agent string of this installation."""
        return format_user_agent(self.vendor, self.version, self.os_token)

    def ua_key(self) -> str:
        """Canonical ``vendor-version`` label."""
        return f"{self.vendor.value}-{self.version}"

    def environment(self, model: Optional[EvolutionModel] = None) -> JSEnvironment:
        """Materialize the JavaScript surface of this installation."""
        engine = engine_for_vendor(self.vendor, self.version)
        environment = JSEnvironment(engine, self.version, model=model)
        for perturbation in self.perturbations:
            environment = perturbation.apply(environment)
        return environment
