"""Fraud (anti-detect) browser simulators.

Section 2.3 of the paper categorizes fraud browsers by how their
JavaScript surface reacts to user-agent spoofing:

* **Category 1** — the surface matches *no* legitimate browser
  (Linken Sphere, ClonBrowser);
* **Category 2** — the surface is a fixed legitimate engine that does
  *not* follow the spoofed user-agent (GoLogin, Incogniton, Octo
  Browser, Sphere, CheBrowser, VMLogin, AntBrowser);
* **Category 3** — the surface follows the selected user-agent
  (AdsPower), defeating coarse-grained detection;
* **Category 4** — a genuine browser driven inside a spoofed
  environment (stolen-cookie replay), also out of scope for
  coarse-grained detection.

The Table 1 inventory lives in :mod:`repro.fraudbrowsers.catalog`;
profile construction for the Section 7.2 experiment lives in
:mod:`repro.fraudbrowsers.profiles`.
"""

from repro.fraudbrowsers.base import Category, FraudBrowser, FraudProfile
from repro.fraudbrowsers.catalog import (
    FRAUD_BROWSERS,
    fraud_browser,
    fraud_browsers_in_category,
)
from repro.fraudbrowsers.namespace_probe import MarkerHit, scan_environment, scan_globals
from repro.fraudbrowsers.profiles import build_experiment_profiles

__all__ = [
    "Category",
    "FRAUD_BROWSERS",
    "FraudBrowser",
    "FraudProfile",
    "MarkerHit",
    "build_experiment_profiles",
    "fraud_browser",
    "fraud_browsers_in_category",
    "scan_environment",
    "scan_globals",
]
