"""Fraud browser behavioural model.

A :class:`FraudBrowser` turns a *claimed* user-agent (the victim's,
loaded from a stolen profile) into the :class:`JSEnvironment` the
session actually exposes.  The four categories of Section 2.3 differ
only in that mapping:

* Category 1 fabricates a surface that matches no legitimate engine
  (base engine counts plus per-profile random distortions);
* Category 2 always exposes the browser's own bundled engine;
* Category 3 swaps in the engine matching the claimed user-agent;
* Category 4 *is* the engine matching the claimed user-agent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional, Tuple

import numpy as np

from repro.browsers.releases import engine_for_vendor
from repro.browsers.useragent import ParsedUserAgent, Vendor
from repro.jsengine.environment import JSEnvironment
from repro.jsengine.evolution import Engine, EvolutionModel, default_model

__all__ = ["Category", "FraudBrowser", "FraudProfile"]

# Interfaces Category-1 browsers visibly tamper with: their homegrown
# spoofing layers patch prototype surfaces inconsistently.
_CATEGORY1_TAMPERED = (
    "Element",
    "Document",
    "HTMLElement",
    "SVGElement",
    "CanvasRenderingContext2D",
    "WebGL2RenderingContext",
    "WebGLRenderingContext",
    "AudioContext",
    "HTMLVideoElement",
    "PointerEvent",
    "Range",
    "ShadowRoot",
)


class Category(IntEnum):
    """Fraud browser behavioural categories (paper Section 2.3)."""

    IMPOSSIBLE_FINGERPRINT = 1
    FIXED_ENGINE = 2
    ENGINE_FOLLOWS_UA = 3
    GENUINE_BROWSER = 4


@dataclass(frozen=True)
class FraudProfile:
    """One configured profile inside a fraud browser.

    ``claimed`` is the spoofed (victim) user-agent; ``profile_seed``
    individualizes Category-1 surface distortions.
    """

    browser_name: str
    claimed: ParsedUserAgent
    profile_seed: int = 0


@dataclass(frozen=True)
class FraudBrowser:
    """A fraud browser product (one Table 1 row).

    Parameters
    ----------
    name, version:
        Product identity, e.g. ``("GoLogin", "3.3.23")``.
    category:
        Behavioural category.
    engine_version:
        For Category 1/2: the Chromium version of the bundled engine.
    released:
        Approximate release (Table 1); used only for reporting.
    supports_custom_ua:
        Whether the operator can type an arbitrary user-agent (Table 1
        notes some products only offer canned profiles).
    leaked_globals:
        Vendor artifacts the product's build leaks onto ``window`` —
        the Section 8 observation that AntBrowser exposes an
        ``ANTBROWSER`` object and ``antBrowser``-prefixed attributes,
        ironically making itself *more* fingerprintable.
    """

    name: str
    version: str
    category: Category
    engine_version: int
    released: str
    supports_custom_ua: bool = True
    leaked_globals: Tuple[str, ...] = ()

    @property
    def full_name(self) -> str:
        """Product name with version, as in Table 1."""
        return f"{self.name}-{self.version}"

    def environment(
        self,
        profile: FraudProfile,
        model: Optional[EvolutionModel] = None,
    ) -> JSEnvironment:
        """The surface a session of ``profile`` actually exposes."""
        model = model if model is not None else default_model()
        if self.category is Category.IMPOSSIBLE_FINGERPRINT:
            environment = self._impossible_environment(profile, model)
        elif self.category is Category.FIXED_ENGINE:
            environment = JSEnvironment(
                Engine.CHROMIUM, self.engine_version, model=model
            )
        else:
            # Categories 3 and 4 expose the engine the user-agent claims.
            engine = engine_for_vendor(
                profile.claimed.vendor, profile.claimed.version
            )
            environment = JSEnvironment(
                engine, profile.claimed.version, model=model
            )
        if self.leaked_globals:
            environment = environment.with_overrides(
                global_markers=self.leaked_globals
            )
        return environment

    def _impossible_environment(
        self, profile: FraudProfile, model: EvolutionModel
    ) -> JSEnvironment:
        """Category 1: bundled engine plus inconsistent patching.

        The distortions are large and profile-specific, so these
        fingerprints land far from every legitimate centroid — and, as a
        side effect, are usually *unique*, which is what drives the small
        unique-fingerprint share in the paper's Figure 5 data.
        """
        rng = np.random.default_rng(
            (hash_seed(self.full_name) * 1_000_003 + profile.profile_seed) % 2**63
        )
        adjustments = {
            interface: int(rng.integers(-28, 29))
            for interface in _CATEGORY1_TAMPERED
        }
        return JSEnvironment(
            Engine.CHROMIUM,
            self.engine_version,
            model=model,
            count_adjustments=adjustments,
        )

    def claimable_vendors(self) -> Tuple[Vendor, ...]:
        """Vendors the product's profile editor offers."""
        if self.supports_custom_ua:
            return (Vendor.CHROME, Vendor.EDGE, Vendor.FIREFOX)
        return (Vendor.CHROME,)


def hash_seed(text: str) -> int:
    """Stable non-salted hash for seeding per-product generators."""
    import zlib

    return zlib.crc32(text.encode("utf-8"))
