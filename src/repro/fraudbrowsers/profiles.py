"""Profile construction for the fraud-browser experiment (Section 7.2).

The paper installs each Category-1/2 product on a Windows machine and
creates multiple profiles per product, "employing various user-agents
representative of all clusters in Table 3 ... Where feasible, for each
cluster we generated two profiles using candidate user-agents from the
same cluster.  In cases where a fraud browser limited this capability,
we opted for either randomized user-agents or those uniquely provided by
the browser itself."

:func:`build_experiment_profiles` reproduces that procedure against a
trained cluster table.  Per-product plans encode each product's
customization limits (Sphere's free build only offers canned old-Chrome
profiles, which is why its recall is lowest in Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.browsers.useragent import parse_ua_key
from repro.fraudbrowsers.base import FraudBrowser, FraudProfile, hash_seed

__all__ = ["ProfilePlan", "build_experiment_profiles"]


@dataclass(frozen=True)
class ProfilePlan:
    """How many profiles a product's editor allows per cluster."""

    per_cluster: int = 1
    extra_random: int = 0
    canned_ua_keys: tuple = ()


# Plans sized to match the Table 5 experiment (16 / 9 / 19 / 9 profiles
# for GoLogin, Incogniton, Octo Browser and Sphere respectively, given
# the nine user-agent-bearing clusters of Table 3).
_PLANS: Dict[str, ProfilePlan] = {
    "GoLogin": ProfilePlan(per_cluster=2),
    "Incogniton": ProfilePlan(per_cluster=1),
    "Octo Browser": ProfilePlan(per_cluster=2, extra_random=1),
    "Sphere": ProfilePlan(
        per_cluster=0,
        canned_ua_keys=(
            "chrome-63",
            "chrome-64",
            "chrome-65",
            "firefox-60",
            "chrome-70",
            "chrome-90",
            "chrome-100",
            "chrome-110",
            "chrome-113",
        ),
    ),
}
_DEFAULT_PLAN = ProfilePlan(per_cluster=1)

# GoLogin's editor, per the paper, offers a wide range of OS/browser
# choices but caps the experiment at two profiles for eight clusters.
_GOLOGIN_CLUSTER_CAP = 8


def build_experiment_profiles(
    browser: FraudBrowser,
    cluster_table: Mapping[int, Sequence[str]],
) -> List[FraudProfile]:
    """Profiles the Section 7.2 operator would create for ``browser``.

    ``cluster_table`` maps cluster ids to the ``vendor-version`` keys of
    the user-agents assigned to them (paper Table 3).
    """
    plan = _PLANS.get(browser.name, _DEFAULT_PLAN)
    profiles: List[FraudProfile] = []
    seed_base = hash_seed(browser.full_name)

    if plan.canned_ua_keys:
        for index, key in enumerate(plan.canned_ua_keys):
            profiles.append(
                FraudProfile(browser.full_name, parse_ua_key(key), seed_base + index)
            )
        return profiles

    populated = sorted(
        cluster for cluster, uas in cluster_table.items() if len(uas) > 0
    )
    if browser.name == "GoLogin":
        populated = populated[:_GOLOGIN_CLUSTER_CAP]

    index = 0
    for cluster in populated:
        uas = sorted(cluster_table[cluster])
        # Spread picks across the cluster: first and last user-agent keys
        # give version diversity inside the cluster.
        picks = [uas[0]]
        if plan.per_cluster > 1 and len(uas) > 1:
            picks.append(uas[-1])
        for key in picks[: plan.per_cluster]:
            profiles.append(
                FraudProfile(browser.full_name, parse_ua_key(key), seed_base + index)
            )
            index += 1

    for extra in range(plan.extra_random):
        # "Randomized user-agents": rotate deterministically through the
        # table so the experiment stays reproducible.
        flat = sorted(key for uas in cluster_table.values() for key in uas)
        if not flat:
            break
        key = flat[(seed_base + extra) % len(flat)]
        profiles.append(
            FraudProfile(browser.full_name, parse_ua_key(key), seed_base + 1000 + extra)
        )
        index += 1
    return profiles
