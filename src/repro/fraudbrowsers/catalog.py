"""The fraud browser inventory of paper Table 1.

Engine versions reflect the Chromium build each product bundled around
its release date (Category 2 products ship a fixed engine; Sphere 1.3 is
the outlier, emulating a fingerprint similar to Chrome 61 — the reason
its recall is lowest in Table 5).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fraudbrowsers.base import Category, FraudBrowser

__all__ = ["FRAUD_BROWSERS", "fraud_browser", "fraud_browsers_in_category"]

FRAUD_BROWSERS: Tuple[FraudBrowser, ...] = (
    FraudBrowser(
        "Linken Sphere", "8.93", Category.IMPOSSIBLE_FINGERPRINT, 100,
        "April 2022", leaked_globals=("__ls_profile", "lsphereConfig"),
    ),
    FraudBrowser(
        "ClonBrowser", "4.6.6", Category.IMPOSSIBLE_FINGERPRINT, 112,
        "May 2023", leaked_globals=("__clonbrowser__",),
    ),
    FraudBrowser("Incogniton", "3.2.7.7", Category.FIXED_ENGINE, 112, "May 2023"),
    FraudBrowser("GoLogin", "3.2.19", Category.FIXED_ENGINE, 112, "May 2023"),
    FraudBrowser("GoLogin", "3.3.23", Category.FIXED_ENGINE, 114, "June 2023"),
    FraudBrowser("CheBrowser", "0.3.38", Category.FIXED_ENGINE, 111, "May 2023"),
    FraudBrowser("VMLogin", "1.3.8.5", Category.FIXED_ENGINE, 110, "April 2023"),
    FraudBrowser("Octo Browser", "1.10", Category.FIXED_ENGINE, 114, "September 2023"),
    FraudBrowser(
        "Sphere", "1.3", Category.FIXED_ENGINE, 61, "November 2023",
        supports_custom_ua=False,
    ),
    FraudBrowser(
        "AntBrowser", "2023.05", Category.FIXED_ENGINE, 112, "May 2023",
        leaked_globals=("ANTBROWSER", "antBrowserProfile", "antBrowserVersion"),
    ),
    FraudBrowser("AdsPower", "4.12.27", Category.ENGINE_FOLLOWS_UA, 108, "December 2022"),
    FraudBrowser("AdsPower", "5.4.20", Category.ENGINE_FOLLOWS_UA, 112, "April 2023"),
)


def fraud_browser(full_name: str) -> FraudBrowser:
    """Look up a product by its ``Name-version`` label."""
    for browser in FRAUD_BROWSERS:
        if browser.full_name == full_name or browser.name == full_name:
            return browser
    raise KeyError(f"unknown fraud browser: {full_name!r}")


def fraud_browsers_in_category(category: Category) -> List[FraudBrowser]:
    """All products of one behavioural category."""
    return [b for b in FRAUD_BROWSERS if b.category is category]
