"""Stolen-profile marketplace simulation.

The paper's threat model starts at places like the Genesis Market:
phishing kits and infostealers harvest victim browser profiles
(cookies, user-agent, fingerprint data), marketplaces sell them in
bulk, and buyers load them into anti-detect browsers to commit account
takeover.  This module models that supply chain so attack campaigns can
be generated end to end:

* :class:`StolenProfile` — one listing: the victim's user-agent frozen
  at harvest time, aging on the shelf;
* :class:`Marketplace` — harvests listings from a traffic window and
  sells them (oldest stock first, like real bulk listings);
* :class:`AttackCampaign` — a buyer: picks a fraud browser, buys
  profiles, and emits the attack sessions Browser Polygraph will face.

The staleness this produces — victims' browsers lag live traffic by the
shelf time — is exactly why fraud-browser sessions claim older
user-agents than the population at large, one of the signals behind
the paper's Table 4 enrichment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import List, Optional

import numpy as np

from repro.browsers.useragent import ParsedUserAgent, parse_ua_key
from repro.fingerprint.collector import FingerprintCollector
from repro.fingerprint.features import FEATURE_SPECS
from repro.fingerprint.script import FingerprintPayload
from repro.fraudbrowsers.base import FraudBrowser, FraudProfile
from repro.traffic.dataset import Dataset

__all__ = ["AttackCampaign", "AttackSession", "Marketplace", "StolenProfile"]


@dataclass(frozen=True)
class StolenProfile:
    """One marketplace listing: a victim's harvested browser state."""

    victim_session_id: str
    user_agent: ParsedUserAgent
    harvested_on: date
    price_usd: float

    def age_days(self, today: date) -> int:
        """Shelf age of the listing."""
        return max(0, (today - self.harvested_on).days)


@dataclass
class Marketplace:
    """A Genesis-style bulk marketplace for stolen browser profiles."""

    seed: int = 0
    inventory: List[StolenProfile] = field(default_factory=list)
    sold_count: int = 0

    def harvest_from_traffic(
        self,
        dataset: Dataset,
        infection_rate: float = 0.01,
    ) -> int:
        """Infostealers skim a fraction of a traffic window.

        Returns the number of listings added.  Pricing follows the
        underground norm: fresher profiles with mainstream browsers
        fetch more.
        """
        if not 0.0 < infection_rate <= 1.0:
            raise ValueError("infection_rate must lie in (0, 1]")
        rng = np.random.default_rng(self.seed)
        n_victims = max(1, int(round(infection_rate * len(dataset))))
        picks = rng.choice(len(dataset), size=n_victims, replace=False)
        added = 0
        for idx in sorted(int(i) for i in picks):
            parsed = parse_ua_key(str(dataset.ua_keys[idx]))
            harvested = dataset.days[idx].astype("datetime64[D]").astype(object)
            price = 12.0 + float(rng.uniform(0, 25))
            self.inventory.append(
                StolenProfile(
                    victim_session_id=str(dataset.session_ids[idx]),
                    user_agent=parsed,
                    harvested_on=harvested,
                    price_usd=round(price, 2),
                )
            )
            added += 1
        self.inventory.sort(key=lambda p: p.harvested_on)
        return added

    def buy(
        self,
        count: int,
        freshest: bool = False,
        today: Optional[date] = None,
    ) -> List[StolenProfile]:
        """Sell ``count`` listings, oldest stock first (bulk discount).

        ``freshest=True`` flips the order — buyers reacting to detection
        pay a premium for recently harvested profiles.  ``today`` keeps
        the marketplace causal: listings harvested after ``today`` are
        not yet for sale (a gauntlet replaying a virtual timeline must
        never sell tomorrow's loot).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if today is None:
            eligible = list(self.inventory)
        else:
            eligible = [p for p in self.inventory if p.harvested_on <= today]
        if freshest:
            eligible = eligible[::-1]
        sold = eligible[:count]
        sold_ids = {id(p) for p in sold}
        self.inventory = [p for p in self.inventory if id(p) not in sold_ids]
        self.sold_count += len(sold)
        return sold

    @property
    def stock(self) -> int:
        """Listings currently for sale."""
        return len(self.inventory)

    def average_age_days(self, today: date) -> float:
        """Mean shelf age of the current stock."""
        if not self.inventory:
            return 0.0
        return float(
            np.mean([p.age_days(today) for p in self.inventory])
        )


@dataclass(frozen=True)
class AttackSession:
    """One ATO attempt: the payload the defender's endpoint receives."""

    payload: FingerprintPayload
    victim: StolenProfile
    browser: str
    # Shelf age of the stolen profile on the day of the attack; only
    # known when the campaign ran with an explicit clock.
    shelf_age_days: Optional[int] = None


class AttackCampaign:
    """A fraudster: one fraud browser, a batch of bought profiles."""

    def __init__(
        self,
        browser: FraudBrowser,
        marketplace: Marketplace,
        seed: int = 0,
    ) -> None:
        self.browser = browser
        self.marketplace = marketplace
        self.seed = seed
        self._collector = FingerprintCollector(FEATURE_SPECS)

    def run(self, n_attacks: int, today: Optional[date] = None) -> List[AttackSession]:
        """Buy profiles and generate the attack sessions.

        Each bought profile becomes one login attempt: the fraud browser
        loads the victim's user-agent while exposing its own engine
        surface (per its Section 2.3 category).

        ``today`` is the campaign's clock: the marketplace only sells
        stock already harvested by then, session ids carry the date (so
        a multi-day replay never collides), and each attack records the
        profile's shelf age.  Without it the campaign is clockless — the
        one-shot behaviour earlier PRs relied on.
        """
        if n_attacks < 1:
            raise ValueError("n_attacks must be >= 1")
        purchases = self.marketplace.buy(
            min(n_attacks, self.marketplace.stock), today=today
        )
        sessions: List[AttackSession] = []
        for index, stolen in enumerate(purchases):
            profile = FraudProfile(
                self.browser.full_name,
                stolen.user_agent,
                profile_seed=self.seed * 10_000 + index,
            )
            environment = self.browser.environment(profile)
            values = self._collector.collect(environment)
            from repro.fraudbrowsers.namespace_probe import scan_environment

            hits = scan_environment(environment)
            if today is None:
                session_id = f"ato-{self.seed:02d}-{index:05d}"
            else:
                session_id = f"ato-{self.seed:02d}-{today:%Y%m%d}-{index:05d}"
            payload = FingerprintPayload(
                session_id=session_id,
                user_agent=stolen.user_agent.raw,
                values=tuple(int(v) for v in values),
                service_time_ms=0.0,
                suspicious_globals=tuple(h.global_name for h in hits),
            )
            sessions.append(
                AttackSession(
                    payload,
                    stolen,
                    self.browser.full_name,
                    shelf_age_days=(
                        stolen.age_days(today) if today is not None else None
                    ),
                )
            )
        return sessions
