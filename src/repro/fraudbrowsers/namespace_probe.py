"""Namespace probe: hunting vendor artifacts on ``window``.

Section 8 of the paper observes that AntBrowser "includes an
``ANTBROWSER`` object in its namespace and ``antBrowser``-prefixed
attributes on the ``window`` object, significantly increasing its
fingerprintability", and suggests automating such software-specific
detection as future work.  This module implements that extension:

* :data:`KNOWN_MARKER_PATTERNS` — regexes for vendor artifacts observed
  in fraud-browser builds;
* :func:`scan_environment` — run the probe against a
  :class:`~repro.jsengine.environment.JSEnvironment`;
* a generic heuristic for *unknown* products: any non-standard global
  matching suspicious naming conventions (double-underscore wrappers,
  "profile"/"spoof" stems) is reported too.

The probe is an independent, deterministic signal: the detector can use
it to escalate a session to maximum risk regardless of the clustering
verdict (``PipelineConfig.enable_namespace_probe``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple

from repro.jsengine.environment import JSEnvironment

__all__ = ["KNOWN_MARKER_PATTERNS", "MarkerHit", "scan_environment", "scan_globals"]

# Vendor-specific artifacts catalogued from fraud-browser builds.
KNOWN_MARKER_PATTERNS: Tuple[Tuple[str, str], ...] = (
    ("AntBrowser", r"(?i)^antbrowser"),
    ("Linken Sphere", r"(?i)(^__ls_|lsphere)"),
    ("ClonBrowser", r"(?i)clonbrowser"),
)

# Generic smell: wrapper frameworks stash state in dunder-style globals
# or telltale "profile"/"spoof" stems that no genuine browser exposes.
_GENERIC_PATTERN = re.compile(r"(?i)^__\w+__$|spoof|antidetect")

_STANDARD_GLOBALS = frozenset(
    (
        "window", "self", "document", "location", "navigator", "history",
        "screen", "localStorage", "sessionStorage", "fetch", "setTimeout",
        "setInterval", "requestAnimationFrame",
    )
)


@dataclass(frozen=True)
class MarkerHit:
    """One suspicious global found by the probe."""

    global_name: str
    product: str  # matched product, or "unknown-wrapper"


def scan_globals(names) -> List[MarkerHit]:
    """Scan a list of ``window`` globals for fraud-browser artifacts."""
    hits: List[MarkerHit] = []
    for name in names:
        if name in _STANDARD_GLOBALS:
            continue
        matched = False
        for product, pattern in KNOWN_MARKER_PATTERNS:
            if re.search(pattern, name):
                hits.append(MarkerHit(name, product))
                matched = True
                break
        if not matched and _GENERIC_PATTERN.search(name):
            hits.append(MarkerHit(name, "unknown-wrapper"))
    return hits


def scan_environment(environment: JSEnvironment) -> List[MarkerHit]:
    """Run the probe against a session's JavaScript environment."""
    return scan_globals(environment.window_global_names())
