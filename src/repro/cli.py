"""Command-line interface: ``browser-polygraph`` / ``python -m repro``.

Subcommands:

* ``train``       — generate the training window, fit, save the model
  (``--jobs`` fans the k-means restarts over worker processes);
* ``retrain``     — refit an existing model on a dataset or a session
  store's export and save the refreshed model;
* ``store``       — inspect (``info``) or seal (``migrate``) a session
  store's segments into the columnar training format;
* ``detect``      — load a model and evaluate a saved dataset;
* ``drift``       — load a model and run the drift check on a window;
* ``experiment``  — regenerate any paper table/figure by name;
* ``simulate``    — generate and save a synthetic FinOrg dataset;
* ``serve``       — run the collection endpoint over a saved model or a
  registry's live model (``--runtime`` switches to the micro-batched
  scoring runtime and resumes any in-flight rollout; ``--shards N``
  serves a sharded cluster behind the consistent-hash router);
  SIGTERM/SIGINT drain in-flight requests before exiting;
* ``cluster``     — inspect a running cluster (``status`` pretty-prints
  the server's ``GET /cluster`` document);
* ``sessions``    — inspect a server's event-stream session layer
  (``status`` pretty-prints the ``GET /sessions`` document);
* ``rollout``     — drive a staged model rollout against a registry:
  ``start`` a candidate into shadow, inspect ``status``, ``promote``
  one stage toward live, or ``abort``;
* ``fuse``        — train (``train``) or inspect (``status``) the
  second-opinion fusion model; ``serve --fusion FUSION.json`` attaches
  it to the per-request scoring path (``POST /check``, ``GET /fusion``);
* ``bench-runtime`` — measure per-request vs batched vs cached
  throughput of the online path;
* ``gauntlet``    — replay an accelerated production year against the
  live serving stack (``run``) or render a saved replay artifact
  (``report BENCH_gauntlet.json``).
"""

from __future__ import annotations

import argparse
import sys
from datetime import date
from typing import Callable, Dict, List, Optional

from repro.analysis import experiments
from repro.core.pipeline import BrowserPolygraph
from repro.traffic.dataset import Dataset
from repro.traffic.generator import TrafficConfig, TrafficSimulator

__all__ = ["main"]

_EXPERIMENTS: Dict[str, Callable[[], "experiments.ExperimentResult"]] = {
    "table2": experiments.table2_performance,
    "table3": experiments.table3_cluster_table,
    "table4": experiments.table4_flagging,
    "table5": experiments.table5_fraud_browsers,
    "table6": experiments.table6_drift,
    "table7": experiments.table7_entropy,
    "table9": experiments.table9_k6,
    "table10": experiments.table10_cluster_sensitivity,
    "table11": experiments.table11_pca_sensitivity,
    "table12": experiments.table12_feature_sensitivity,
    "table13": experiments.table13_finegrained_windows,
    "table14": experiments.table14_finegrained_macos,
    "fig2": experiments.fig2_pca_variance,
    "fig3": experiments.fig3_fig4_elbow,
    "fig4": experiments.fig3_fig4_elbow,
    "fig5": experiments.fig5_anonymity,
}


def _parse_date(text: str) -> date:
    return date.fromisoformat(text)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="browser-polygraph",
        description="Coarse-grained browser fingerprinting for fraud detection "
        "(IMC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a synthetic FinOrg dataset")
    simulate.add_argument("output", help="output .npz path")
    simulate.add_argument("--sessions", type=int, default=205_000)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--start", type=_parse_date, default=date(2023, 3, 1))
    simulate.add_argument("--end", type=_parse_date, default=date(2023, 7, 1))

    train = sub.add_parser("train", help="fit Browser Polygraph and save the model")
    train.add_argument("model", help="output model .json path")
    train.add_argument("--dataset", help="training dataset .npz (default: simulate)")
    train.add_argument("--sessions", type=int, default=205_000)
    train.add_argument("--seed", type=int, default=7)
    train.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the k-means restarts (-1: all cores); "
        "the trained model is identical at any setting",
    )

    retrain = sub.add_parser(
        "retrain", help="refit an existing model and save the result"
    )
    retrain.add_argument("model", help="existing model .json path")
    retrain.add_argument(
        "--dataset", help="training dataset .npz (or use --store)"
    )
    retrain.add_argument(
        "--store", help="session store directory to export and retrain on"
    )
    retrain.add_argument(
        "--output",
        help="where to save the refreshed model (default: overwrite)",
    )
    retrain.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the k-means restarts (-1: all cores)",
    )

    store = sub.add_parser(
        "store", help="manage a session store's segments"
    )
    store.add_argument(
        "action",
        choices=["info", "migrate"],
        help="info: summarize segments; migrate: seal JSONL segments "
        "into the columnar (memory-mappable) format in place",
    )
    store.add_argument("root", help="session store directory")

    detect = sub.add_parser("detect", help="evaluate a dataset with a saved model")
    detect.add_argument("model", help="model .json path")
    detect.add_argument("dataset", help="dataset .npz path")
    detect.add_argument("--risk-threshold", type=int, default=0)

    drift = sub.add_parser("drift", help="drift-check a dataset with a saved model")
    drift.add_argument("model", help="model .json path")
    drift.add_argument("dataset", help="dataset .npz path")

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="paper table/figure to regenerate",
    )

    sub.add_parser("figures", help="render Figures 2-5 as ASCII charts")

    report = sub.add_parser(
        "report", help="generate the paper-vs-measured EXPERIMENTS report"
    )
    report.add_argument("--output", help="write markdown here instead of stdout")

    serve = sub.add_parser(
        "serve", help="run the collection endpoint over a saved model"
    )
    serve.add_argument(
        "model", nargs="?", help="model .json path (or use --registry)"
    )
    serve.add_argument(
        "--registry",
        help="serve the registry's live model instead of a model file; "
        "with --runtime, an in-flight rollout is resumed",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8040)
    serve.add_argument(
        "--runtime",
        action="store_true",
        help="use the micro-batched scoring runtime instead of the "
        "per-request service",
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--batch-size", type=int, default=64)
    serve.add_argument("--linger-ms", type=float, default=2.0)
    serve.add_argument("--queue-capacity", type=int, default=4096)
    serve.add_argument(
        "--cache-entries", type=int, default=8192, help="0 disables the cache"
    )
    serve.add_argument("--cache-ttl", type=float, default=300.0)
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve a sharded cluster with N scoring shards behind the "
        "consistent-hash router (0: single-process)",
    )
    serve.add_argument(
        "--shard-backend",
        choices=["thread", "process"],
        default="thread",
        help="host each shard in this process (thread) or in its own "
        "child process (process)",
    )
    serve.add_argument(
        "--affinity",
        choices=["session", "fingerprint"],
        default="session",
        help="ring routing key: session id (sticky canary buckets) or "
        "fingerprint bytes (partitions the verdict-cache key space)",
    )
    serve.add_argument(
        "--transport",
        choices=["shm", "pickle"],
        default="shm",
        help="process-shard transport: zero-copy shared-memory feature "
        "rings (shm) or pickled wires over the control pipe (pickle); "
        "ignored for thread shards",
    )
    serve.add_argument(
        "--ring-slots",
        type=int,
        default=4096,
        help="slots per shard in the shared-memory feature ring "
        "(shm transport only)",
    )
    serve.add_argument(
        "--ingest",
        choices=["sync", "async"],
        default="sync",
        help="HTTP front end: one-request-per-thread WSGI (sync) or the "
        "pipelined asyncio server with batch coalescing and read-side "
        "backpressure (async)",
    )
    serve.add_argument(
        "--hedge-ms",
        type=float,
        default=None,
        help="latency budget in ms after which a request is hedged to "
        "the next same-version replica (default: no hedging)",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        help="enable event-stream session scoring (POST /event, "
        "GET /session/{id}) with this idle TTL in seconds; behind "
        "--shards, session state partitions into per-shard lanes "
        "(requires --affinity session)",
    )
    serve.add_argument(
        "--session-max",
        type=int,
        default=100_000,
        help="maximum concurrently tracked sessions (LRU beyond this)",
    )
    serve.add_argument(
        "--session-log",
        help="directory for the durable sliding-window event log "
        "(default: in-memory state only)",
    )
    serve.add_argument(
        "--fusion",
        metavar="FUSION_MODEL",
        help="attach a trained fusion model (see `fuse train`): enables "
        "POST /check and GET /fusion plus fused provenance on verdicts "
        "(per-request single-process mode only)",
    )
    serve.add_argument(
        "--fusion-lift",
        type=float,
        default=None,
        help="lift threshold for the second opinion to count as "
        "fraud-grade (default: policy default)",
    )
    serve.add_argument(
        "--coverage",
        action="store_true",
        help="track release coverage: classify every UA against the "
        "live model's release table, keep per-vendor unknown-UA rates "
        "with release-calendar bands, and expose GET /coverage plus "
        "polygraph_coverage_* metrics",
    )

    cluster = sub.add_parser(
        "cluster", help="inspect a running sharded cluster"
    )
    cluster.add_argument("action", choices=["status"])
    cluster.add_argument(
        "--url",
        default="http://127.0.0.1:8040",
        help="base URL of the serving endpoint",
    )

    sessions = sub.add_parser(
        "sessions", help="inspect a server's event-stream session layer"
    )
    sessions.add_argument("action", choices=["status"])
    sessions.add_argument(
        "--url",
        default="http://127.0.0.1:8040",
        help="base URL of the serving endpoint",
    )

    coverage = sub.add_parser(
        "coverage", help="inspect a server's release-coverage tracker"
    )
    coverage.add_argument("action", choices=["status"])
    coverage.add_argument(
        "--url",
        default="http://127.0.0.1:8040",
        help="base URL of the serving endpoint",
    )

    rollout = sub.add_parser(
        "rollout", help="drive a staged model rollout against a registry"
    )
    rollout.add_argument("registry", help="model registry directory")
    rollout.add_argument(
        "action",
        choices=["start", "status", "promote", "abort"],
        help="start a candidate into shadow, show status, advance one "
        "stage (promotes to live after the last), or abort",
    )
    rollout.add_argument(
        "--candidate",
        type=int,
        help="candidate version to start (default: newest staged candidate)",
    )
    rollout.add_argument(
        "--stages",
        help="comma-separated canary fractions, e.g. 0.01,0.05,0.25,1.0",
    )
    rollout.add_argument(
        "--shadow-sample",
        type=float,
        default=None,
        help="share of live-arm traffic mirrored to the candidate",
    )

    fuse = sub.add_parser(
        "fuse", help="train or inspect the second-opinion fusion model"
    )
    fuse_sub = fuse.add_subparsers(dest="fuse_action", required=True)
    fuse_train = fuse_sub.add_parser(
        "train",
        help="propagate weak tags over the training window and save a "
        "calibrated fusion model",
    )
    fuse_train.add_argument("model", help="trained polygraph model .json path")
    fuse_train.add_argument("output", help="output fusion model .json path")
    fuse_train.add_argument(
        "--dataset", help="training dataset .npz (default: simulate)"
    )
    fuse_train.add_argument("--sessions", type=int, default=60_000)
    fuse_train.add_argument("--seed", type=int, default=7)
    fuse_train.add_argument("--neighbors", type=int, default=None)
    fuse_train.add_argument("--alpha", type=float, default=None)
    fuse_train.add_argument("--shrinkage", type=float, default=None)
    fuse_train.add_argument("--tag-scale", type=float, default=None)
    fuse_status = fuse_sub.add_parser(
        "status", help="summarize a saved fusion model"
    )
    fuse_status.add_argument("fusion", help="fusion model .json path")

    bench = sub.add_parser(
        "bench-runtime",
        help="throughput of per-request vs batched vs cached scoring",
    )
    bench.add_argument("--sessions", type=int, default=12_000)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--concurrency", type=int, default=8)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--batch-size", type=int, default=64)
    bench.add_argument("--linger-ms", type=float, default=2.0)
    bench.add_argument("--queue-capacity", type=int, default=4096)
    bench.add_argument(
        "--cache-entries", type=int, default=8192, help="0 disables the cache"
    )

    gauntlet = sub.add_parser(
        "gauntlet",
        help="adversarial co-evolution replay against the serving stack",
    )
    gauntlet_sub = gauntlet.add_subparsers(dest="gauntlet_command", required=True)
    gauntlet_run = gauntlet_sub.add_parser(
        "run", help="replay N virtual days and print the report"
    )
    gauntlet_run.add_argument("--days", type=int, default=185)
    gauntlet_run.add_argument(
        "--start", type=date.fromisoformat, default=date(2023, 5, 5)
    )
    gauntlet_run.add_argument("--seed", type=int, default=7)
    gauntlet_run.add_argument("--sessions-per-day", type=int, default=420)
    gauntlet_run.add_argument("--shards", type=int, default=2)
    gauntlet_run.add_argument("--bootstrap-sessions", type=int, default=18_000)
    gauntlet_run.add_argument(
        "--drill-day",
        type=int,
        default=40,
        help="day index of the chaos drill; negative disables it",
    )
    gauntlet_run.add_argument("--jobs", type=int, default=1)
    gauntlet_run.add_argument(
        "--output", default=None, help="write the bench-envelope JSON here"
    )
    gauntlet_report = gauntlet_sub.add_parser(
        "report", help="render a saved gauntlet artifact"
    )
    gauntlet_report.add_argument("artifact", help="path to BENCH_gauntlet.json")
    gauntlet_report.add_argument(
        "--timeline", type=int, default=40, help="max event days to list"
    )
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = TrafficConfig(
        seed=args.seed, start=args.start, end=args.end
    ).scaled(args.sessions)
    dataset = TrafficSimulator(config).generate()
    dataset.save(args.output)
    print(
        f"wrote {len(dataset)} sessions "
        f"({len(dataset.distinct_releases())} releases) to {args.output}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    if args.dataset:
        dataset = Dataset.load(args.dataset)
    else:
        config = TrafficConfig(seed=args.seed).scaled(args.sessions)
        dataset = TrafficSimulator(config).generate()
    pipeline = BrowserPolygraph().fit(dataset, jobs=args.jobs)
    pipeline.save(args.model)
    print(
        f"trained on {len(dataset)} sessions; accuracy "
        f"{pipeline.accuracy:.4f}; model saved to {args.model}"
    )
    return 0


def _cmd_retrain(args: argparse.Namespace) -> int:
    if bool(args.dataset) == bool(args.store):
        print(
            "retrain: provide exactly one of --dataset or --store",
            file=sys.stderr,
        )
        return 2
    if args.dataset:
        dataset = Dataset.load(args.dataset)
    else:
        from repro.service.storage import SessionStore

        dataset = SessionStore(args.store).export_dataset()
    pipeline = BrowserPolygraph.load(args.model)
    pipeline.retrain(dataset, jobs=args.jobs)
    output = args.output or args.model
    pipeline.save(output)
    print(
        f"retrained on {len(dataset)} sessions; accuracy "
        f"{pipeline.accuracy:.4f}; model saved to {output}"
    )
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.service.storage import SessionStore

    store = SessionStore(args.root)
    if args.action == "migrate":
        converted = store.migrate()
        if converted:
            print(f"sealed {len(converted)} segment(s) into columnar format:")
            for path in converted:
                print(f"  {path.name}")
        else:
            print("no JSONL segments to migrate")
        return 0
    # info
    paths = store.segments()
    print(f"{len(store)} records in {len(paths)} segment(s) at {store.root}")
    for path in paths:
        kind = "columnar" if path.suffix == ".npz" else "jsonl"
        print(f"  {path.name}  {kind}  {path.stat().st_size} bytes")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    pipeline = BrowserPolygraph.load(args.model)
    dataset = Dataset.load(args.dataset)
    report = pipeline.detect(dataset)
    over = report.risk_over(args.risk_threshold)
    print(
        f"{len(dataset)} sessions: {report.n_flagged} flagged, "
        f"{int(over.sum())} above risk factor {args.risk_threshold}, "
        f"{report.n_unknown_ua} with unknown user-agents"
    )
    for idx in report.flagged_indices()[:20]:
        print(
            f"  {dataset.session_ids[idx]}  ua={dataset.ua_keys[idx]}  "
            f"cluster {report.predicted[idx]} (expected {report.expected[idx]})  "
            f"risk={report.risk_factors[idx]}"
        )
    if report.n_flagged > 20:
        print(f"  ... and {report.n_flagged - 20} more")
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    pipeline = BrowserPolygraph.load(args.model)
    dataset = Dataset.load(args.dataset)
    records = pipeline.drift_report(dataset)
    threshold = pipeline.config.drift_accuracy_threshold
    for record in records:
        marker = "RETRAIN" if record.retrain_needed(threshold) else "ok"
        print(
            f"{record.ua_key:>14}  cluster {record.cluster} "
            f"(baseline {record.baseline_cluster})  "
            f"accuracy {100 * record.accuracy:.2f}%  "
            f"n={record.n_sessions}  {marker}"
        )
    print(f"retraining needed: {pipeline.retrain_needed(records)}")
    return 0


def _cmd_figures(_: argparse.Namespace) -> int:
    from repro.analysis.figures import render_figures

    pca = [row[1] for row in experiments.fig2_pca_variance().rows]
    elbow = [tuple(row) for row in experiments.fig3_fig4_elbow().rows]
    anonymity = {row[0]: row[1] for row in experiments.fig5_anonymity().rows}
    print(render_figures(pca, elbow, anonymity))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.paper_report import generate_report

    text = generate_report()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _runtime_config(args: argparse.Namespace) -> "RuntimeConfig":
    from repro.runtime.service import RuntimeConfig

    return RuntimeConfig(
        n_workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_batch_size=args.batch_size,
        max_linger_ms=args.linger_ms,
        cache_entries=args.cache_entries,
        cache_ttl_seconds=getattr(args, "cache_ttl", 300.0),
    )


def _build_service(pipeline: BrowserPolygraph, args: argparse.Namespace):
    """The scoring service ``serve`` wraps — runtime or per-request."""
    if args.runtime:
        from repro.runtime.service import RuntimeScoringService

        return RuntimeScoringService(pipeline, config=_runtime_config(args)).start()
    from repro.service.scoring import ScoringService

    return ScoringService(pipeline)


def _build_cluster(args: argparse.Namespace, registry):
    """The sharded path of ``serve``: supervisor + router (+ rollout)."""
    from repro.cluster import (
        ClusterConfig,
        ClusterRouter,
        RouterConfig,
        ShardSupervisor,
    )

    config = ClusterConfig(
        n_shards=args.shards,
        backend=args.shard_backend,
        transport=args.transport,
        ring_slots=args.ring_slots,
    )
    runtime_config = _runtime_config(args)
    if registry is not None:
        supervisor = ShardSupervisor.from_registry(
            registry, config=config, runtime_config=runtime_config
        )
    else:
        supervisor = ShardSupervisor(
            args.model, config=config, runtime_config=runtime_config
        )
    router = ClusterRouter(
        supervisor,
        RouterConfig(affinity=args.affinity, hedge_after_ms=args.hedge_ms),
    ).start()
    managers = []
    if registry is not None and args.shard_backend == "thread":
        managers = supervisor.attach_rollout(registry)
        state = managers[0].state if managers else None
        if state is not None and state.in_flight:
            print(
                f"resumed rollout of v{state.candidate_version} on "
                f"{len(managers)} shards ({state.status}, "
                f"stage {state.stage_index})"
            )
    return router, managers


def _serve_until_signalled(httpd) -> None:
    """Run the server until SIGTERM/SIGINT, then stop accepting.

    ``serve_forever`` runs on a background thread because calling
    ``httpd.shutdown()`` from the serving thread deadlocks; the main
    thread parks on an event that the signal handlers set.  On exit the
    listener is stopped first, then the caller drains the scoring
    backlog — no request dies mid-batch.
    """
    import signal
    import threading

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _request_stop)
        except ValueError:
            pass  # not on the main thread (tests); rely on Ctrl-C
    server_thread = threading.Thread(
        target=httpd.serve_forever, name="polygraph-http", daemon=True
    )
    server_thread.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        httpd.shutdown()
        server_thread.join(timeout=10.0)


def _cmd_serve(args: argparse.Namespace) -> int:
    from wsgiref.simple_server import make_server

    from repro.service.api import CollectionApp

    registry = None
    if args.registry:
        from repro.core.retraining import ModelRegistry

        registry = ModelRegistry(args.registry)
    elif not args.model:
        print("serve: provide a model path or --registry", file=sys.stderr)
        return 2
    if args.fusion and (args.shards or args.runtime):
        print(
            "serve: --fusion requires the per-request single-process "
            "path (the fusion arm is not batched or shard-aware yet)",
            file=sys.stderr,
        )
        return 2
    managers = []
    if args.shards:
        if args.session_ttl is not None and args.affinity != "session":
            print(
                "serve: --session-ttl with --shards requires "
                "--affinity session (session state is partitioned by "
                "the session id's ring position)",
                file=sys.stderr,
            )
            return 2
        service, managers = _build_cluster(args, registry)
        transport_note = (
            f", {args.transport} transport"
            if args.shard_backend == "process"
            else ""
        )
        mode = (
            f"cluster ({args.shards} {args.shard_backend} shards, "
            f"{args.affinity} affinity{transport_note})"
        )
    else:
        pipeline = (
            registry.load() if registry else BrowserPolygraph.load(args.model)
        )
        service = _build_service(pipeline, args)
        if registry is not None and args.runtime:
            from repro.rollout import RolloutManager

            manager = RolloutManager(registry, runtime=service)
            state = manager.resume()
            managers = [manager]
            if state is not None and state.in_flight:
                print(
                    f"resumed rollout of v{state.candidate_version} "
                    f"({state.status}, stage {state.stage_index})"
                )
        mode = "runtime (micro-batched)" if args.runtime else "per-request"
        if args.fusion:
            from repro.fusion import FusionArm, FusionModel, FusionPolicy
            from repro.fusion import FusionPolicyConfig

            fusion_model = FusionModel.load(args.fusion)
            policy = None
            if args.fusion_lift is not None:
                policy = FusionPolicy(
                    FusionPolicyConfig(
                        second_opinion_lift=args.fusion_lift,
                        second_only_lift=args.fusion_lift,
                    )
                )
            service.attach_fusion(FusionArm(fusion_model, policy=policy))
            mode += ", fusion"
    sessions = None
    if args.session_ttl is not None:
        if args.shards:
            from repro.cluster.sessions import ClusterSessionService

            sessions = ClusterSessionService(
                service,
                ttl_seconds=args.session_ttl,
                max_sessions=args.session_max,
                event_log_root=args.session_log,
            )
            mode += (
                f", session streams (ttl {args.session_ttl:g}s, "
                f"{args.shards} lanes)"
            )
        else:
            from repro.sessions import SessionEventLog, SessionScoringService

            event_log = (
                SessionEventLog(args.session_log) if args.session_log else None
            )
            sessions = SessionScoringService(
                service,
                event_log=event_log,
                ttl_seconds=args.session_ttl,
                max_sessions=args.session_max,
            )
            mode += f", session streams (ttl {args.session_ttl:g}s)"
    coverage_tracker = None
    if args.coverage:
        from datetime import date as _date

        from repro.coverage import CoverageTracker

        # The bound method keeps the tracker's day current without the
        # tracker itself calling wall-clock functions at import time.
        coverage_tracker = CoverageTracker(clock=_date.today)
        service.attach_coverage(coverage_tracker)
        mode += ", coverage"
    app = CollectionApp(service, sessions=sessions, coverage=coverage_tracker)
    if args.ingest == "async":
        from repro.service.aingest import AsyncIngestServer

        server = AsyncIngestServer(service, app, host=args.host, port=args.port)
        mode += ", async ingest"
    else:
        server = make_server(args.host, args.port, app)
    # Long-lived serving process: everything built so far (the model,
    # the shard plumbing, the WSGI app) lives until exit, so move it
    # out of the collector's reach — otherwise every gen2 collection
    # re-scans the whole model heap mid-request.
    import gc

    gc.collect()
    gc.freeze()
    with server as httpd:
        endpoints = (
            "POST /collect, GET /health, GET /metrics, GET /rollout, "
            "GET /cluster"
        )
        if sessions is not None:
            endpoints += ", POST /event, GET /session/{id}, GET /sessions"
        if coverage_tracker is not None:
            endpoints += ", GET /coverage"
        if getattr(service, "fusion", None) is not None:
            endpoints += ", POST /check, GET /fusion"
        print(
            f"serving {mode} scoring on http://{args.host}:{args.port} "
            f"({endpoints})"
        )
        try:
            _serve_until_signalled(httpd)
        finally:
            print("draining in-flight requests before exit")
            for manager in managers:
                manager.save()
                manager.close()
            shutdown = getattr(service, "shutdown", None)
            if shutdown is not None:
                shutdown(drain=True)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json as _json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    endpoint = args.url.rstrip("/") + "/cluster"
    try:
        with urlopen(endpoint, timeout=5.0) as response:
            document = _json.load(response)
    except HTTPError as exc:
        if exc.code == 404:
            print(f"{args.url} is serving single-process (no cluster)")
            return 1
        print(f"cluster status: {endpoint} answered {exc.code}", file=sys.stderr)
        return 2
    except (URLError, OSError) as exc:
        print(f"cluster status: cannot reach {endpoint}: {exc}", file=sys.stderr)
        return 2
    print(
        f"backend {document['backend']}, serving v{document['serving_version']}, "
        f"{document['healthy_shards']}/{document['n_shards']} shards healthy, "
        f"{document['vnodes']} vnodes/shard"
    )
    for shard in document["shards"]:
        health = "healthy" if shard["healthy"] else "UNHEALTHY"
        ring = "on ring" if shard["on_ring"] else "OFF RING"
        print(
            f"  {shard['shard_id']:>4}  {health:<9}  v{shard['model_version']}"
            f"  restarts={shard['restarts']}  failures={shard['failures']}"
            f"  {ring}"
        )
    router = document.get("router")
    if router:
        print(
            f"router: {router['requests_total']} requests "
            f"({router['affinity']} affinity), {router['hedged_total']} hedged "
            f"({router['hedge_wins_total']} wins), "
            f"{router['failovers_total']} failovers, "
            f"{router['unroutable_total']} unroutable"
        )
    return 0


def _cmd_sessions(args: argparse.Namespace) -> int:
    import json as _json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    endpoint = args.url.rstrip("/") + "/sessions"
    try:
        with urlopen(endpoint, timeout=5.0) as response:
            document = _json.load(response)
    except HTTPError as exc:
        if exc.code == 404:
            print(f"{args.url} is serving without session streams")
            return 1
        print(f"sessions status: {endpoint} answered {exc.code}", file=sys.stderr)
        return 2
    except (URLError, OSError) as exc:
        print(f"sessions status: cannot reach {endpoint}: {exc}", file=sys.stderr)
        return 2
    print(
        f"{document['active_sessions']} active sessions "
        f"(ttl {document['ttl_seconds']:g}s, cap {document['max_sessions']}), "
        f"{document['events_total']} events, "
        f"{document['revisions_total']} revisions "
        f"({document['escalations_total']} escalations)"
    )
    for reason, count in sorted(document["revision_reasons"].items()):
        if count:
            print(f"  {reason:>14}: {count}")
    log = document.get("event_log")
    if log:
        print(
            f"event log: {log['segments']} segment(s), "
            f"{log['sealed_events']} sealed + {log['buffered_events']} "
            f"buffered events, {log['pruned_segments']} pruned"
        )
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    import json as _json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    endpoint = args.url.rstrip("/") + "/coverage"
    try:
        with urlopen(endpoint, timeout=5.0) as response:
            document = _json.load(response)
    except HTTPError as exc:
        if exc.code == 404:
            print(f"{args.url} is serving without coverage tracking")
            return 1
        print(f"coverage status: {endpoint} answered {exc.code}", file=sys.stderr)
        return 2
    except (URLError, OSError) as exc:
        print(f"coverage status: cannot reach {endpoint}: {exc}", file=sys.stderr)
        return 2
    generation = document["model_generation"]
    print(
        f"{document['known_releases']} known releases"
        + (f" (model generation {generation})" if generation is not None else "")
        + (f", band day {document['day']}" if document["day"] else "")
    )
    print(
        f"  {'vendor':<8}  {'observed':>9}  {'unknown':>8}  "
        f"{'window rate':>11}  {'band high':>9}  status"
    )
    for vendor, stats in document["vendors"].items():
        if stats["out_of_band"]:
            status = "OUT OF BAND"
        elif stats["adopting"]:
            status = "adopting"
        else:
            status = "ok"
        print(
            f"  {vendor:<8}  {stats['observed']:>9}  {stats['unknown']:>8}  "
            f"{stats['window_unknown_rate']:>11.4f}  {stats['band_high']:>9.4f}"
            f"  {status}"
        )
    if document["top_unknown"]:
        top = ", ".join(
            f"{entry['ua_key']} ({entry['count']})"
            for entry in document["top_unknown"]
        )
        print(f"  top unknown: {top}")
    return 0


def _cmd_rollout(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core.retraining import STATUS_CANDIDATE, ModelRegistry
    from repro.rollout import LIVE, RolloutConfig, RolloutError, RolloutManager

    registry = ModelRegistry(args.registry)
    config = RolloutConfig()
    overrides = {}
    if args.stages:
        overrides["stages"] = tuple(
            float(s) for s in args.stages.split(",") if s.strip()
        )
    if args.shadow_sample is not None:
        overrides["shadow_sample_rate"] = args.shadow_sample
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    manager = RolloutManager(registry, config=config)

    if args.action == "start":
        candidate = args.candidate
        if candidate is None:
            staged = [
                e
                for e in registry.versions()
                if e.get("status") == STATUS_CANDIDATE
            ]
            if not staged:
                print(
                    "rollout start: no staged candidate in the registry "
                    "(use --candidate N)",
                    file=sys.stderr,
                )
                return 2
            candidate = staged[-1]["version"]
        try:
            state = manager.start(candidate)
        except (RolloutError, LookupError, ValueError) as exc:
            print(f"rollout start: {exc}", file=sys.stderr)
            return 2
        print(
            f"rollout of v{state.candidate_version} started in shadow "
            f"against live v{state.baseline_version} (salt {state.salt})"
        )
        return 0

    state = manager.resume()
    if state is None:
        print("no rollout recorded in this registry", file=sys.stderr)
        return 2
    if args.action == "status":
        print(_json.dumps(manager.status_dict(), indent=2))
        return 0
    if args.action == "abort":
        state = manager.abort()
        print(f"rollout of v{state.candidate_version} aborted")
        return 0
    # promote: advance one stage; guardrails are still evaluated against
    # the persisted disagreement report, but stage completeness is the
    # operator's call when driving from the CLI.
    try:
        state = manager.advance(force=True)
    except RolloutError as exc:
        print(f"rollout promote: {exc}", file=sys.stderr)
        return 2
    if state.status == LIVE:
        print(f"v{state.candidate_version} is live")
    elif state.in_flight:
        print(
            f"advanced to canary stage {state.stage_index} "
            f"({state.stage_fraction:.0%} of traffic)"
        )
    else:
        print(
            f"rollout of v{state.candidate_version} is {state.status}"
            + (f" (breach: {state.breach['name']})" if state.breach else "")
        )
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    from repro.fusion import FusionModel, PropagationConfig
    from repro.fusion.model import load_fusion_document

    if args.fuse_action == "status":
        document = load_fusion_document(args.fusion)
        reliability = document["reliability"]
        print(
            f"fusion model over {len(document['node_keys'])} nodes "
            f"({document['trained_sessions']} training sessions, "
            f"reference day {document['reference_day']})"
        )
        print(
            f"propagation: {document['iterations']} iterations, "
            f"converged={document['converged']}, "
            f"base rate {document['calibrator']['base_rate']:.5f}"
        )
        print(
            f"calibration: ECE {reliability['ece']:.5f} over "
            f"{reliability['n']} held-out sessions"
        )
        print(f"pipeline digest: {document['pipeline_digest'][:16]}...")
        return 0

    # train
    from dataclasses import replace as _replace

    pipeline = BrowserPolygraph.load(args.model)
    if args.dataset:
        dataset = Dataset.load(args.dataset)
    else:
        config = TrafficConfig(seed=args.seed).scaled(args.sessions)
        dataset = TrafficSimulator(config).generate()
    prop = PropagationConfig()
    overrides = {
        "n_neighbors": args.neighbors,
        "alpha": args.alpha,
        "shrinkage": args.shrinkage,
        "tag_scale": args.tag_scale,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if overrides:
        prop = _replace(prop, **overrides)
    model = FusionModel.train(dataset, pipeline.cluster_model, config=prop)
    model.save(args.output)
    status = model.status_dict()
    print(
        f"propagated weak tags over {status['nodes']} nodes from "
        f"{len(dataset)} sessions "
        f"({status['iterations']} iterations, "
        f"converged={status['converged']})"
    )
    print(
        f"base rate {status['base_rate']:.5f}; held-out "
        f"ECE {status['reliability_ece']:.5f}; model saved to {args.output}"
    )
    return 0


def _cmd_bench_runtime(args: argparse.Namespace) -> int:
    from repro.runtime.bench import run_throughput_benchmark

    report = run_throughput_benchmark(
        n_sessions=args.sessions,
        seed=args.seed,
        concurrency=args.concurrency,
        config=_runtime_config(args),
    )
    print(report.render())
    return 0


def _cmd_gauntlet(args: argparse.Namespace) -> int:
    from repro.gauntlet import DayLedger, GauntletConfig, run_gauntlet
    from repro.gauntlet.report import (
        render_report,
        render_timeline,
        write_gauntlet_json,
    )

    if args.gauntlet_command == "run":
        config = GauntletConfig(
            start=args.start,
            days=args.days,
            seed=args.seed,
            sessions_per_day=args.sessions_per_day,
            n_shards=args.shards,
            bootstrap_sessions=args.bootstrap_sessions,
            drill_day=args.drill_day if args.drill_day >= 0 else None,
            jobs=args.jobs,
        )
        result = run_gauntlet(config)
        print(render_report(result.ledger, result.adversary))
        print()
        print(render_timeline(result.ledger, limit=40))
        if args.output:
            write_gauntlet_json(result, args.output)
            print(f"\nwrote {args.output}")
        return 0

    import json as _json

    with open(args.artifact, "r", encoding="utf-8") as handle:
        document = _json.load(handle)
    ledger = DayLedger.from_cells(document["cells"])
    print(render_report(ledger, document.get("adversary")))
    print()
    print(render_timeline(ledger, limit=args.timeline))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = sorted(_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        print(_EXPERIMENTS[name]().render())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "train": _cmd_train,
        "retrain": _cmd_retrain,
        "store": _cmd_store,
        "detect": _cmd_detect,
        "drift": _cmd_drift,
        "experiment": _cmd_experiment,
        "figures": _cmd_figures,
        "report": _cmd_report,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "sessions": _cmd_sessions,
        "coverage": _cmd_coverage,
        "rollout": _cmd_rollout,
        "fuse": _cmd_fuse,
        "bench-runtime": _cmd_bench_runtime,
        "gauntlet": _cmd_gauntlet,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
