"""Session-stream scoring: per-event verdicts with mid-session revision.

:class:`SessionScoringService` wraps either scoring service
(per-request :class:`~repro.service.scoring.ScoringService` or the
micro-batched :class:`~repro.runtime.service.RuntimeScoringService`)
and adds session state on top.  The contract that keeps it honest:

* **First-event parity.**  The first event of a session is scored by
  forwarding its *exact* single-vector wire bytes through the inner
  service — the same ingest, the same cache, the same model call — so
  its verdict is bit-identical to today's one-shot path.
* **Follow-up events bypass the dedup window, not validation.**  The
  inner dedup window exists to reject replayed session ids; a second
  *event* of a live session is not a replay.  Follow-ups are scored
  under a derived id (``sid@seq``, hashed if over the length cap),
  which the verdict cache ignores entirely — its keys are
  ``(values, ua_key)`` — so repeat fingerprints stay cache-hits.
* **Sticky verdicts.**  A session once flagged stays flagged and its
  risk factor only ratchets up; clean follow-ups are reported as
  informational ``flag_cleared`` revisions without lowering anything.

Cluster-flip detection needs the *predicted cluster*, which the inner
services' :class:`Verdict` deliberately omits.  A small LRU memo maps
``(values, user_agent)`` to the pipeline's full
:class:`DetectionResult`; coarse fingerprints are low-cardinality, so
in steady state this costs one extra model call per distinct surface,
not per event.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from datetime import date
from typing import Dict, List, Optional, Tuple

from repro.core.detection import DetectionResult
from repro.service.ingest import MAX_SESSION_ID_LENGTH
from repro.service.scoring import Verdict
from repro.sessions.revision import (
    RevisionReason,
    VerdictRevision,
    classify_revision,
)
from repro.sessions.store import SessionEventLog
from repro.sessions.tracker import EventRecord, SessionState, SessionTracker
from repro.traffic.events import EventType, SessionEvent

__all__ = ["SessionObservation", "SessionScoringService"]

_DETECT_MEMO_LIMIT = 8192


@dataclass(frozen=True)
class SessionObservation:
    """What the session layer says about one observed event."""

    verdict: Verdict  # the per-event verdict (first event: bit-identical)
    session_flagged: bool  # sticky session verdict after this event
    session_risk: Optional[int]
    revision: Optional[VerdictRevision]
    event_seq: int
    session_created: bool

    def to_dict(self) -> dict:
        return {
            "session_id": self.verdict.session_id,
            "accepted": self.verdict.accepted,
            "event_flagged": self.verdict.flagged,
            "event_risk": self.verdict.risk_factor,
            "reject_reason": self.verdict.reject_reason,
            "session_flagged": self.session_flagged,
            "session_risk": self.session_risk,
            "revision": None if self.revision is None else self.revision.to_dict(),
            "event_seq": self.event_seq,
            "session_created": self.session_created,
        }


def _derived_session_id(session_id: str, seq: int) -> str:
    """The inner-service id for a follow-up event.

    ``sid@seq`` keeps derived ids readable in quarantine logs; when the
    suffix would blow the wire contract's length cap the id collapses
    to a fixed-width blake2b digest instead (still unique per
    ``(sid, seq)``, still under the cap).
    """
    derived = f"{session_id}@{seq}"
    if len(derived) <= MAX_SESSION_ID_LENGTH:
        return derived
    digest = hashlib.blake2b(
        derived.encode("utf-8"), digest_size=24
    ).hexdigest()
    return f"ev-{digest}"


class SessionScoringService:
    """Stateful, revisable scoring over an inner one-shot service.

    Parameters
    ----------
    inner:
        A started :class:`ScoringService` or
        :class:`RuntimeScoringService`; all single-vector scoring goes
        through it unchanged.
    tracker:
        Session state bounds; a default tracker is created if omitted
        (``ttl_seconds`` then applies to it).
    event_log:
        Optional :class:`SessionEventLog` for durable per-event rows.
    """

    def __init__(
        self,
        inner,
        tracker: Optional[SessionTracker] = None,
        event_log: Optional[SessionEventLog] = None,
        ttl_seconds: float = 1800.0,
        max_sessions: int = 100_000,
    ) -> None:
        self.inner = inner
        self._virtual_now = 0.0
        if tracker is None:
            tracker = SessionTracker(
                max_sessions=max_sessions,
                ttl_seconds=ttl_seconds,
                clock=self._clock,
            )
        self.tracker = tracker
        self.event_log = event_log
        self._lock = threading.Lock()
        self._detect_memo: Dict[tuple, Optional[DetectionResult]] = {}
        # Counters for /metrics.
        self.events_total = 0
        self.revisions_total = 0
        self.escalations_total = 0
        self.revision_reasons: Dict[str, int] = {
            reason.value: 0 for reason in RevisionReason
        }
        # Sticky per-session fusion provenance (populated only when the
        # inner service has a fusion arm attached); insertion-ordered so
        # capacity eviction drops the oldest sessions first.
        self._fusion_by_sid: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # clock

    def _clock(self) -> float:
        """Event-time clock for the default tracker.

        Tracking TTLs in *event* time (the max timestamp observed) keeps
        eviction deterministic under replay: a benchmark replaying a day
        of traffic in two seconds still ages sessions by their own
        clock, not the host's.
        """
        return self._virtual_now

    # ------------------------------------------------------------------
    # scoring

    def observe_wire(self, wire: bytes, day: Optional[date] = None) -> SessionObservation:
        """Score one event-envelope payload (``POST /event`` body)."""
        try:
            event = SessionEvent.from_wire(wire)
        except ValueError as exc:
            verdict = Verdict(
                session_id="",
                accepted=False,
                flagged=False,
                risk_factor=None,
                reject_reason=f"malformed_event: {str(exc)[:80]}",
                latency_ms=0.0,
            )
            return SessionObservation(
                verdict=verdict,
                session_flagged=False,
                session_risk=None,
                revision=None,
                event_seq=-1,
                session_created=False,
            )
        return self.observe_event(event, day=day)

    def observe_event(
        self, event: SessionEvent, day: Optional[date] = None
    ) -> SessionObservation:
        """Score one event and reconcile it with the session verdict."""
        with self._lock:
            if event.timestamp > self._virtual_now:
                self._virtual_now = event.timestamp

        if event.seq == 0:
            # Parity path: the untouched single-vector bytes.
            inner_wire = event.core_wire()
        else:
            derived = _derived_session_id(event.session_id, event.seq)
            inner_wire = SessionEvent(
                session_id=derived,
                event_type=event.event_type,
                seq=event.seq,
                timestamp=event.timestamp,
                user_agent=event.user_agent,
                values=event.values,
                suspicious_globals=event.suspicious_globals,
            ).core_wire()
        verdict = self.inner.score_wire(inner_wire, day=day)
        if not verdict.accepted:
            return SessionObservation(
                verdict=verdict,
                session_flagged=False,
                session_risk=None,
                revision=None,
                event_seq=event.seq,
                session_created=False,
            )
        # Report under the real session id, whatever id scored inside.
        if verdict.session_id != event.session_id:
            verdict = Verdict(
                session_id=event.session_id,
                accepted=verdict.accepted,
                flagged=verdict.flagged,
                risk_factor=verdict.risk_factor,
                reject_reason=verdict.reject_reason,
                latency_ms=verdict.latency_ms,
            )

        result = self._detect(event.values, event.user_agent)
        ua_key = result.ua_key if result is not None else None

        state, created = self.tracker.get_or_create(event.session_id)
        with self._lock:
            self.events_total += 1
            revision = self._reconcile_locked(state, event, verdict, result, ua_key)
            record = EventRecord(
                seq=event.seq,
                event_type=event.event_type.value,
                timestamp=event.timestamp,
                flagged=verdict.flagged,
                risk_factor=verdict.risk_factor,
                predicted_cluster=(
                    result.predicted_cluster if result is not None else None
                ),
                ua_key=ua_key,
            )
            state.record_event(
                record, tuple(event.values), self.tracker.max_events_per_session
            )
            session_flagged = state.flagged
            session_risk = state.risk_factor
            if verdict.fused_flagged is not None:
                self._record_fusion_locked(event.session_id, verdict)
        if self.event_log is not None:
            self.event_log.append(
                session_id=event.session_id,
                event_type=event.event_type.value,
                seq=event.seq,
                timestamp=event.timestamp,
                ua_key=ua_key if ua_key is not None else "",
                values=event.values,
                flagged=verdict.flagged,
                risk=verdict.risk_factor,
            )
        return SessionObservation(
            verdict=verdict,
            session_flagged=session_flagged,
            session_risk=session_risk,
            revision=revision,
            event_seq=event.seq,
            session_created=created,
        )

    def _reconcile_locked(
        self,
        state: SessionState,
        event: SessionEvent,
        verdict: Verdict,
        result: Optional[DetectionResult],
        ua_key: Optional[str],
    ) -> Optional[VerdictRevision]:
        """Fold an event verdict into the sticky session verdict."""
        if state.event_count == 0:
            # First event: the session verdict *is* the event verdict.
            state.flagged = verdict.flagged
            state.risk_factor = verdict.risk_factor
            return None
        reason = classify_revision(
            prior_flagged=state.flagged,
            prior_risk=state.risk_factor,
            prior_cluster=state.last_cluster,
            prior_ua_key=state.last_ua_key,
            event_flagged=verdict.flagged,
            event_risk=verdict.risk_factor,
            result=result,
            event_ua_key=ua_key,
        )
        if reason is None:
            return None
        old_flagged, old_risk = state.flagged, state.risk_factor
        revision = None
        if reason in (
            RevisionReason.CLUSTER_FLIP,
            RevisionReason.UA_CHANGE,
            RevisionReason.FLAG_RAISED,
            RevisionReason.RISK_INCREASE,
        ):
            # Escalate: flag sticks, risk ratchets.  A surface change
            # mid-session is suspicious even when both vectors are
            # individually clean, so cluster flips / UA changes flag the
            # session regardless of the event's own verdict.
            state.flagged = True
            candidates = [r for r in (old_risk, verdict.risk_factor) if r is not None]
            state.risk_factor = max(candidates) if candidates else old_risk
        detail = ""
        if reason is RevisionReason.CLUSTER_FLIP and result is not None:
            detail = (
                f"cluster {state.last_cluster} -> {result.predicted_cluster}"
            )
        elif reason is RevisionReason.UA_CHANGE:
            detail = f"ua_key {state.last_ua_key} -> {ua_key}"
        revision = VerdictRevision(
            session_id=event.session_id,
            seq=event.seq,
            event_type=event.event_type.value,
            reason=reason,
            old_flagged=old_flagged,
            new_flagged=state.flagged,
            old_risk=old_risk,
            new_risk=state.risk_factor,
            detail=detail,
        )
        state.revision_count += 1
        self.revisions_total += 1
        self.revision_reasons[reason.value] += 1
        if revision.escalating:
            state.escalation_count += 1
            self.escalations_total += 1
        return revision

    def _record_fusion_locked(self, session_id: str, verdict: Verdict) -> None:
        """Fold one fused verdict into the session's sticky fusion state.

        ``fused_flagged`` sticks once true (mirroring the session
        verdict's ratchet); the cell/score fields track the latest
        event so operators see the current agreement, not a stale one.
        """
        previous = self._fusion_by_sid.pop(session_id, None)
        entry = {
            "fused_flagged": bool(verdict.fused_flagged)
            or bool(previous and previous["fused_flagged"]),
            "cell": verdict.fusion_cell,
            "second_probability": verdict.second_probability,
            "second_lift": verdict.second_lift,
        }
        self._fusion_by_sid[session_id] = entry
        while len(self._fusion_by_sid) > self.tracker.max_sessions:
            self._fusion_by_sid.pop(next(iter(self._fusion_by_sid)))

    def _detect(self, values: Tuple[int, ...], user_agent: str):
        """Memoized full detection result for cluster-flip tracking."""
        key = (values, user_agent)
        memo = self._detect_memo
        if key in memo:
            return memo[key]
        try:
            result = self.inner.polygraph.detect_session(list(values), user_agent)
        except Exception:
            result = None
        with self._lock:
            if len(memo) >= _DETECT_MEMO_LIMIT:
                memo.clear()
            memo[key] = result
        return result

    # ------------------------------------------------------------------
    # introspection

    def session_snapshot(self, session_id: str) -> Optional[dict]:
        """The live state of one session (``GET /session/{id}``)."""
        state = self.tracker.peek(session_id)
        if state is None:
            return None
        with self._lock:
            snapshot = state.to_dict()
            fusion = self._fusion_by_sid.get(session_id)
            if fusion is not None:
                snapshot["fused_verdict"] = dict(fusion)
            return snapshot

    def status_dict(self) -> dict:
        """Aggregate status (``GET /sessions`` and the CLI)."""
        tracker_stats = self.tracker.stats()
        with self._lock:
            status = {
                "active_sessions": tracker_stats["active_sessions"],
                "ttl_seconds": self.tracker.ttl_seconds,
                "max_sessions": self.tracker.max_sessions,
                "events_total": self.events_total,
                "revisions_total": self.revisions_total,
                "escalations_total": self.escalations_total,
                "revision_reasons": dict(self.revision_reasons),
                "evicted_ttl": tracker_stats["evicted_ttl"],
                "evicted_capacity": tracker_stats["evicted_capacity"],
            }
        if self.event_log is not None:
            status["event_log"] = self.event_log.stats()
        return status

    def metrics_lines(self) -> List[str]:
        """Prometheus-style ``polygraph_session_*`` lines."""
        tracker_stats = self.tracker.stats()
        with self._lock:
            lines = [
                "# TYPE polygraph_session_active gauge",
                f"polygraph_session_active {tracker_stats['active_sessions']}",
                "# TYPE polygraph_session_events_total counter",
                f"polygraph_session_events_total {self.events_total}",
                "# TYPE polygraph_session_revisions_total counter",
                f"polygraph_session_revisions_total {self.revisions_total}",
                "# TYPE polygraph_session_escalations_total counter",
                f"polygraph_session_escalations_total {self.escalations_total}",
                "# TYPE polygraph_session_evictions_total counter",
                "polygraph_session_evictions_total"
                f"{{kind=\"ttl\"}} {tracker_stats['evicted_ttl']}",
                "polygraph_session_evictions_total"
                f"{{kind=\"capacity\"}} {tracker_stats['evicted_capacity']}",
            ]
            lines.append("# TYPE polygraph_session_revision_reason_total counter")
            for reason, count in sorted(self.revision_reasons.items()):
                lines.append(
                    "polygraph_session_revision_reason_total"
                    f"{{reason=\"{reason}\"}} {count}"
                )
        return lines
