"""Rolling per-session state.

:class:`SessionTracker` is the bounded, TTL-evicted map behind the
session scoring service: one :class:`SessionState` per live session id,
carrying the sticky verdict summary, incrementally-maintained feature
aggregates, and a bounded typed event log.  Bounds are hard on both
axes — ``max_sessions`` ids (LRU eviction) and ``ttl_seconds`` per id
(lazy expiry on access plus opportunistic sweeps) — so a web-scale
event stream cannot grow the tracker without limit.

The clock is injectable (``clock=``) for deterministic tests and for
the benchmark's virtual-time replay.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["EventRecord", "SessionState", "SessionTracker"]

# Opportunistic TTL sweep cadence: every N tracker touches.
_SWEEP_EVERY = 512


@dataclass(frozen=True)
class EventRecord:
    """One scored event, as kept in a session's bounded log."""

    seq: int
    event_type: str
    timestamp: float
    flagged: bool
    risk_factor: Optional[int]
    predicted_cluster: Optional[int]
    ua_key: Optional[str]

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "event_type": self.event_type,
            "timestamp": self.timestamp,
            "flagged": self.flagged,
            "risk_factor": self.risk_factor,
            "predicted_cluster": self.predicted_cluster,
            "ua_key": self.ua_key,
        }


@dataclass
class SessionState:
    """Everything the service remembers about one live session."""

    session_id: str
    created_at: float
    last_seen: float
    # Sticky verdict summary.
    flagged: bool = False
    risk_factor: Optional[int] = None
    # Last observed scoring context (cluster-flip / UA-change detection).
    last_cluster: Optional[int] = None
    last_ua_key: Optional[str] = None
    last_values: Optional[Tuple[int, ...]] = None
    # Incremental aggregates.
    event_count: int = 0
    flagged_events: int = 0
    distinct_vectors: int = 0
    distinct_ua_keys: int = 0
    revision_count: int = 0
    escalation_count: int = 0
    # Bounded typed event log (newest last; oldest dropped at the cap).
    events: List[EventRecord] = field(default_factory=list)
    _vector_set: set = field(default_factory=set, repr=False)
    _ua_set: set = field(default_factory=set, repr=False)

    def record_event(
        self, record: EventRecord, values: Tuple[int, ...], max_events: int
    ) -> None:
        """Fold one scored event into the aggregates and the log."""
        self.event_count += 1
        if record.flagged:
            self.flagged_events += 1
        if values not in self._vector_set:
            self._vector_set.add(values)
            self.distinct_vectors = len(self._vector_set)
        if record.ua_key is not None and record.ua_key not in self._ua_set:
            self._ua_set.add(record.ua_key)
            self.distinct_ua_keys = len(self._ua_set)
        self.last_cluster = record.predicted_cluster
        self.last_ua_key = record.ua_key
        self.last_values = values
        self.last_seen = record.timestamp
        self.events.append(record)
        if len(self.events) > max_events:
            del self.events[: len(self.events) - max_events]

    def to_dict(self) -> dict:
        """JSON-ready summary (the ``GET /session/{id}`` body)."""
        return {
            "session_id": self.session_id,
            "created_at": self.created_at,
            "last_seen": self.last_seen,
            "flagged": self.flagged,
            "risk_factor": self.risk_factor,
            "event_count": self.event_count,
            "flagged_events": self.flagged_events,
            "distinct_vectors": self.distinct_vectors,
            "distinct_ua_keys": self.distinct_ua_keys,
            "revision_count": self.revision_count,
            "escalation_count": self.escalation_count,
            "events": [e.to_dict() for e in self.events],
        }


class SessionTracker:
    """Bounded map of live sessions with TTL and LRU eviction.

    Thread-safe: the scoring service touches it from whatever thread a
    request arrives on.  ``get_or_create`` refreshes LRU recency; a
    session that outlives ``ttl_seconds`` without a new event is evicted
    lazily when next touched or during a periodic sweep.
    """

    def __init__(
        self,
        max_sessions: int = 100_000,
        ttl_seconds: float = 1800.0,
        max_events_per_session: int = 32,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive")
        if max_events_per_session < 1:
            raise ValueError("max_events_per_session must be >= 1")
        self.max_sessions = max_sessions
        self.ttl_seconds = ttl_seconds
        self.max_events_per_session = max_events_per_session
        self._clock = clock if clock is not None else time.monotonic
        self._sessions: "OrderedDict[str, SessionState]" = OrderedDict()
        self._lock = threading.Lock()
        self._touches = 0
        self.evicted_ttl = 0
        self.evicted_capacity = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def get_or_create(self, session_id: str) -> Tuple[SessionState, bool]:
        """The live state for ``session_id`` (created if absent).

        Returns ``(state, created)``.  An expired entry counts as
        absent: it is evicted and replaced, so a returning session id
        past its TTL starts a fresh stream rather than resurrecting
        stale aggregates.
        """
        now = self._clock()
        with self._lock:
            self._touches += 1
            if self._touches % _SWEEP_EVERY == 0:
                self._sweep_locked(now)
            state = self._sessions.get(session_id)
            if state is not None:
                if now - state.last_seen > self.ttl_seconds:
                    del self._sessions[session_id]
                    self.evicted_ttl += 1
                    state = None
                else:
                    self._sessions.move_to_end(session_id)
            if state is not None:
                return state, False
            state = SessionState(
                session_id=session_id, created_at=now, last_seen=now
            )
            self._sessions[session_id] = state
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
                self.evicted_capacity += 1
            return state, True

    def peek(self, session_id: str) -> Optional[SessionState]:
        """The live state without refreshing recency (``None`` if gone)."""
        now = self._clock()
        with self._lock:
            state = self._sessions.get(session_id)
            if state is None:
                return None
            if now - state.last_seen > self.ttl_seconds:
                del self._sessions[session_id]
                self.evicted_ttl += 1
                return None
            return state

    def sweep(self) -> int:
        """Evict every expired session now; returns the eviction count."""
        now = self._clock()
        with self._lock:
            return self._sweep_locked(now)

    def _sweep_locked(self, now: float) -> int:
        expired = [
            sid
            for sid, state in self._sessions.items()
            if now - state.last_seen > self.ttl_seconds
        ]
        for sid in expired:
            del self._sessions[sid]
        self.evicted_ttl += len(expired)
        return len(expired)

    def active_ids(self) -> List[str]:
        """Live session ids, least-recently-seen first."""
        with self._lock:
            return list(self._sessions)

    def stats(self) -> Dict[str, int]:
        """Counters for metrics export."""
        with self._lock:
            return {
                "active_sessions": len(self._sessions),
                "evicted_ttl": self.evicted_ttl,
                "evicted_capacity": self.evicted_capacity,
            }
