"""Durable sliding-window log of scored session events.

Reuses the columnar segment mechanics from
:mod:`repro.service.columnar` — atomic uncompressed ``.npz`` writes,
memory-mapped reads — with an event-shaped column set: one row per
*event*, not per session, carrying the interaction type, sequence
number, absolute timestamp and scoring outcome next to the fingerprint.

The log is a sliding window: an in-memory buffer absorbs appends, seals
into an immutable segment every ``segment_events`` rows, and
:meth:`prune` drops whole segments whose newest event has fallen out of
the retention window.  A tiny JSON manifest (rewritten atomically)
records per-segment time bounds so window queries and pruning decide
from metadata without opening the archives.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.service.columnar import read_segment, write_segment

__all__ = ["EVENT_COLUMNS", "SessionEventLog"]

EVENT_COLUMNS = ("sid", "ev", "seq", "ts", "ua_key", "f", "flagged", "risk")

_MANIFEST = "events_manifest.json"


def _records_to_columns(records: List[dict]) -> Dict[str, np.ndarray]:
    return {
        "sid": np.array([r["sid"] for r in records], dtype="U"),
        "ev": np.array([r["ev"] for r in records], dtype="U"),
        "seq": np.array([r["seq"] for r in records], dtype=np.int32),
        "ts": np.array([r["ts"] for r in records], dtype=np.float64),
        "ua_key": np.array([r["ua_key"] for r in records], dtype="U"),
        "f": np.array([r["f"] for r in records], dtype=np.int32),
        "flagged": np.array([r["flagged"] for r in records], dtype=bool),
        # -1 encodes "no risk factor" (unflagged / unknown UA).
        "risk": np.array(
            [-1 if r.get("risk") is None else r["risk"] for r in records],
            dtype=np.int16,
        ),
    }


def _columns_to_records(columns: Dict[str, np.ndarray]) -> List[dict]:
    records = []
    for idx in range(columns["sid"].shape[0]):
        risk = int(columns["risk"][idx])
        records.append(
            {
                "sid": str(columns["sid"][idx]),
                "ev": str(columns["ev"][idx]),
                "seq": int(columns["seq"][idx]),
                "ts": float(columns["ts"][idx]),
                "ua_key": str(columns["ua_key"][idx]),
                "f": [int(v) for v in columns["f"][idx]],
                "flagged": bool(columns["flagged"][idx]),
                "risk": None if risk < 0 else risk,
            }
        )
    return records


class SessionEventLog:
    """Append-only event log with segment-grained retention.

    Parameters
    ----------
    root:
        Directory for segments and the manifest (created if missing).
    segment_events:
        Buffered events per sealed segment.
    window_seconds:
        Retention horizon; :meth:`prune` drops segments entirely older
        than ``newest_seen - window_seconds``.
    """

    def __init__(
        self,
        root: Union[str, Path],
        segment_events: int = 4096,
        window_seconds: float = 86_400.0,
    ) -> None:
        if segment_events < 1:
            raise ValueError("segment_events must be >= 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_events = segment_events
        self.window_seconds = window_seconds
        self._lock = threading.Lock()
        self._buffer: List[dict] = []
        self._manifest: List[dict] = []
        self._next_segment = 0
        self._newest_ts = float("-inf")
        self.appended = 0
        self.pruned_segments = 0
        self._load_manifest()

    # ------------------------------------------------------------------
    # writes

    def append(
        self,
        session_id: str,
        event_type: str,
        seq: int,
        timestamp: float,
        ua_key: str,
        values,
        flagged: bool,
        risk: Optional[int],
    ) -> None:
        """Record one scored event; seals a segment at the buffer cap."""
        record = {
            "sid": session_id,
            "ev": event_type,
            "seq": int(seq),
            "ts": float(timestamp),
            "ua_key": ua_key,
            "f": [int(v) for v in values],
            "flagged": bool(flagged),
            "risk": risk,
        }
        with self._lock:
            self._buffer.append(record)
            self.appended += 1
            if record["ts"] > self._newest_ts:
                self._newest_ts = record["ts"]
            if len(self._buffer) >= self.segment_events:
                self._seal_locked()

    def seal(self) -> Optional[Path]:
        """Flush the buffer into a segment now (``None`` if empty)."""
        with self._lock:
            return self._seal_locked()

    def _seal_locked(self) -> Optional[Path]:
        if not self._buffer:
            return None
        name = f"events-{self._next_segment:06d}.npz"
        path = self.root / name
        columns = _records_to_columns(self._buffer)
        size = write_segment(path, columns, column_set=EVENT_COLUMNS)
        ts = columns["ts"]
        self._manifest.append(
            {
                "name": name,
                "rows": len(self._buffer),
                "bytes": size,
                "min_ts": float(ts.min()),
                "max_ts": float(ts.max()),
            }
        )
        self._next_segment += 1
        self._buffer = []
        self._write_manifest_locked()
        return path

    def prune(self, now: Optional[float] = None) -> int:
        """Drop segments wholly outside the window; returns the count.

        ``now`` defaults to the newest event timestamp ever appended,
        so replay-driven logs (benchmarks, tests) prune against their
        own virtual clock instead of wall time.
        """
        with self._lock:
            if now is None:
                now = self._newest_ts
            if now == float("-inf"):
                return 0
            cutoff = now - self.window_seconds
            keep, drop = [], []
            for entry in self._manifest:
                (drop if entry["max_ts"] < cutoff else keep).append(entry)
            for entry in drop:
                try:
                    (self.root / entry["name"]).unlink()
                except FileNotFoundError:
                    pass
            if drop:
                self._manifest = keep
                self.pruned_segments += len(drop)
                self._write_manifest_locked()
            return len(drop)

    # ------------------------------------------------------------------
    # reads

    def window(
        self, seconds: Optional[float] = None, now: Optional[float] = None
    ) -> List[dict]:
        """Events within the trailing window, oldest first.

        Only segments whose manifest bounds overlap the window are
        opened (memory-mapped); the in-memory buffer is included.
        """
        with self._lock:
            if now is None:
                now = self._newest_ts
            horizon = self.window_seconds if seconds is None else seconds
            cutoff = now - horizon
            manifest = list(self._manifest)
            buffered = [r for r in self._buffer if r["ts"] >= cutoff]
        records: List[dict] = []
        for entry in manifest:
            if entry["max_ts"] < cutoff:
                continue
            columns = read_segment(
                self.root / entry["name"], column_set=EVENT_COLUMNS
            )
            for record in _columns_to_records(columns):
                if record["ts"] >= cutoff:
                    records.append(record)
        records.extend(buffered)
        records.sort(key=lambda r: (r["ts"], r["sid"], r["seq"]))
        return records

    def events_for(self, session_id: str) -> List[dict]:
        """All retained events of one session, seq order."""
        with self._lock:
            manifest = list(self._manifest)
            buffered = [r for r in self._buffer if r["sid"] == session_id]
        records: List[dict] = []
        for entry in manifest:
            columns = read_segment(
                self.root / entry["name"], column_set=EVENT_COLUMNS
            )
            mask = columns["sid"] == session_id
            if not mask.any():
                continue
            sub = {name: columns[name][mask] for name in EVENT_COLUMNS}
            records.extend(_columns_to_records(sub))
        records.extend(buffered)
        records.sort(key=lambda r: r["seq"])
        return records

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "segments": len(self._manifest),
                "sealed_events": sum(e["rows"] for e in self._manifest),
                "buffered_events": len(self._buffer),
                "appended": self.appended,
                "pruned_segments": self.pruned_segments,
            }

    # ------------------------------------------------------------------
    # manifest

    def _load_manifest(self) -> None:
        path = self.root / _MANIFEST
        if not path.exists():
            return
        document = json.loads(path.read_text())
        self._manifest = [
            e for e in document.get("segments", [])
            if (self.root / e["name"]).exists()
        ]
        if self._manifest:
            self._next_segment = (
                max(int(e["name"].split("-")[1].split(".")[0])
                    for e in self._manifest) + 1
            )
            self._newest_ts = max(e["max_ts"] for e in self._manifest)

    def _write_manifest_locked(self) -> None:
        path = self.root / _MANIFEST
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps({"segments": self._manifest}, indent=1))
        os.replace(tmp, path)
