"""Verdict revision: reconciling a new event with a session's verdict.

A session's verdict is *sticky*: once flagged, it stays flagged, and
its risk factor only ratchets up.  A new event can therefore change the
session verdict in exactly one direction — escalation — and every such
change is recorded as a :class:`VerdictRevision` naming the triggering
event and the reason the reconciliation fired.

``FLAG_CLEARED`` is deliberately informational: a later clean vector
does **not** un-flag a session (an attacker could always replay the
clean spoof after the engine leaked), but analysts want to see the
pattern, so the revision stream reports it without touching the sticky
verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.core.detection import DetectionResult

__all__ = ["RevisionReason", "VerdictRevision", "classify_revision"]


class RevisionReason(str, Enum):
    """Why a session's verdict was revised (or a change was observed)."""

    FLAG_RAISED = "flag_raised"  # clean session, new event flagged
    RISK_INCREASE = "risk_increase"  # already flagged, risk factor rose
    CLUSTER_FLIP = "cluster_flip"  # fingerprint moved clusters mid-session
    UA_CHANGE = "ua_change"  # claimed user-agent changed mid-session
    FLAG_CLEARED = "flag_cleared"  # informational; verdict stays flagged


# Reasons that escalate the sticky session verdict (vs. informational).
ESCALATING_REASONS = frozenset(
    {
        RevisionReason.FLAG_RAISED,
        RevisionReason.RISK_INCREASE,
        RevisionReason.CLUSTER_FLIP,
        RevisionReason.UA_CHANGE,
    }
)


@dataclass(frozen=True)
class VerdictRevision:
    """One change to (or observation about) a session's verdict."""

    session_id: str
    seq: int  # seq of the triggering event
    event_type: str
    reason: RevisionReason
    old_flagged: bool
    new_flagged: bool
    old_risk: Optional[int]
    new_risk: Optional[int]
    detail: str = ""

    @property
    def escalating(self) -> bool:
        """Whether this revision raised the sticky session verdict."""
        return self.reason in ESCALATING_REASONS

    def to_dict(self) -> dict:
        """JSON-ready representation (API and event-log payloads)."""
        return {
            "session_id": self.session_id,
            "seq": self.seq,
            "event_type": self.event_type,
            "reason": self.reason.value,
            "old_flagged": self.old_flagged,
            "new_flagged": self.new_flagged,
            "old_risk": self.old_risk,
            "new_risk": self.new_risk,
            "detail": self.detail,
        }


def classify_revision(
    prior_flagged: bool,
    prior_risk: Optional[int],
    prior_cluster: Optional[int],
    prior_ua_key: Optional[str],
    event_flagged: bool,
    event_risk: Optional[int],
    result: Optional[DetectionResult],
    event_ua_key: Optional[str],
) -> Optional[RevisionReason]:
    """Decide whether (and why) an event revises the session verdict.

    Pure function of the prior session summary and the new event's
    scoring outcome; precedence is most-specific first — a cluster flip
    explains more than the flag it usually causes, and a mid-session
    user-agent change outranks a bare risk increase.  Returns ``None``
    when the event is consistent with the standing verdict.
    """
    cluster = result.predicted_cluster if result is not None else None
    if (
        prior_cluster is not None
        and cluster is not None
        and cluster != prior_cluster
    ):
        return RevisionReason.CLUSTER_FLIP
    if (
        prior_ua_key is not None
        and event_ua_key is not None
        and event_ua_key != prior_ua_key
    ):
        return RevisionReason.UA_CHANGE
    if event_flagged and not prior_flagged:
        return RevisionReason.FLAG_RAISED
    if event_flagged and prior_flagged:
        if (
            event_risk is not None
            and (prior_risk is None or event_risk > prior_risk)
        ):
            return RevisionReason.RISK_INCREASE
        return None
    if prior_flagged and not event_flagged:
        return RevisionReason.FLAG_CLEARED
    return None
