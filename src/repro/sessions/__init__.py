"""Event-stream session scoring.

Turns the one-shot verdict path into a stateful, revisable one: each
interaction-triggered fingerprint collection is scored as it arrives,
reconciled against the session's prior verdict, and escalations are
emitted as :class:`VerdictRevision` records.  The first event of every
session traverses the exact single-vector wire path, so its verdict is
bit-identical to what the stateless services produce today.
"""

from repro.sessions.revision import RevisionReason, VerdictRevision, classify_revision
from repro.sessions.service import SessionObservation, SessionScoringService
from repro.sessions.store import EVENT_COLUMNS, SessionEventLog
from repro.sessions.tracker import SessionState, SessionTracker

__all__ = [
    "EVENT_COLUMNS",
    "RevisionReason",
    "SessionEventLog",
    "SessionObservation",
    "SessionScoringService",
    "SessionState",
    "SessionTracker",
    "VerdictRevision",
    "classify_revision",
]
