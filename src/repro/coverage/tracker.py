"""Serve-time release-coverage tracking.

Every incoming user-agent is classified against the live model's
known-release table.  The tracker keeps per-vendor rolling unknown-UA
rates plus *expected-rate bands* derived from the release calendar: a
spiking unknown rate in the first days after a calendar release date is
adoption (real users updating), not attack, so the band widens by an
adoption allowance there and tightens back once the window passes.  A
vendor whose windowed unknown rate leaves its band is the signal the
:class:`~repro.coverage.planner.RefreshPlanner` escalates on.

The tracker is deliberately clock-free by default: callers under an
explicit timeline (the gauntlet's virtual clock, tests) pass ``day=`` to
:meth:`observe` and band queries, while the serving CLI passes a
``clock`` callable (the bound ``date.today``) so metrics lines can
evaluate the band at scrape time.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass
from datetime import date
from typing import Callable, Deque, Dict, Iterable, List, Optional, Sequence, Set

from repro.browsers.releases import ReleaseCalendar, default_calendar

__all__ = [
    "CoverageBand",
    "CoverageConfig",
    "CoverageTracker",
    "VENDOR_LABELS",
    "vendor_of",
]

# Stable label set for metrics/status: the three in-scope vendors plus a
# catch-all for everything else (mobile UAs, exotic engines, garbage).
VENDOR_LABELS = ("chrome", "edge", "firefox", "other")


def vendor_of(ua_key: str) -> str:
    """Vendor label of a ``vendor-version`` key (``"other"`` if not in scope)."""
    vendor = str(ua_key).rsplit("-", 1)[0].lower()
    return vendor if vendor in VENDOR_LABELS[:3] else "other"


@dataclass(frozen=True)
class CoverageConfig:
    """Tunables for the per-vendor unknown-rate bands."""

    #: Rolling window (observations per vendor) for the unknown rate.
    window: int = 2000
    #: Minimum windowed observations before a band verdict is trusted.
    min_observations: int = 200
    #: Steady-state unknown-rate ceiling outside adoption windows
    #: (stragglers, minor/mobile builds the table never carries).
    baseline_rate: float = 0.02
    #: Extra headroom while a vendor is inside an adoption window.
    adoption_allowance: float = 0.25
    #: Days after a calendar release during which its unknown traffic
    #: counts as adoption rather than attack.
    adoption_days: int = 7

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if not 0.0 <= self.baseline_rate <= 1.0:
            raise ValueError("baseline_rate must lie in [0, 1]")
        if self.adoption_allowance < 0.0:
            raise ValueError("adoption_allowance must be >= 0")
        if self.adoption_days < 0:
            raise ValueError("adoption_days must be >= 0")


@dataclass(frozen=True)
class CoverageBand:
    """Expected unknown-rate band for one vendor on one day."""

    vendor: str
    low: float
    high: float
    #: Whether an adoption window (uncovered calendar release shipped
    #: within the last ``adoption_days``) widened the band.
    adopting: bool


class CoverageTracker:
    """Per-vendor unknown-UA rates against the live known-release table.

    Thread-safe: the runtime worker pool and cluster shard transports
    feed ``observe``/``observe_many`` concurrently while ``/coverage``
    and ``/metrics`` read snapshots.
    """

    def __init__(
        self,
        calendar: Optional[ReleaseCalendar] = None,
        config: Optional[CoverageConfig] = None,
        clock: Optional[Callable[[], date]] = None,
    ) -> None:
        self.calendar = calendar if calendar is not None else default_calendar()
        self.config = config if config is not None else CoverageConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._known_keys: Set[str] = set()
        self._generation: Optional[int] = None
        self._windows: Dict[str, Deque[bool]] = {
            vendor: deque(maxlen=self.config.window) for vendor in VENDOR_LABELS
        }
        self._window_unknown: Dict[str, int] = {v: 0 for v in VENDOR_LABELS}
        self._observed: Dict[str, int] = {v: 0 for v in VENDOR_LABELS}
        self._unknown: Dict[str, int] = {v: 0 for v in VENDOR_LABELS}
        self._unknown_keys: Counter = Counter()
        self._last_day: Optional[date] = None

    # -- known-release table ------------------------------------------

    def set_known_keys(
        self, keys: Iterable[str], generation: Optional[int] = None
    ) -> None:
        """Swap in the serving model's UA table (on load and each retrain)."""
        fresh = {str(k) for k in keys}
        with self._lock:
            self._known_keys = fresh
            if generation is not None:
                self._generation = int(generation)

    def is_known(self, ua_key: str) -> bool:
        """Whether a key is in the current serving table."""
        with self._lock:
            return str(ua_key) in self._known_keys

    @property
    def known_release_count(self) -> int:
        with self._lock:
            return len(self._known_keys)

    # -- observation feed ---------------------------------------------

    def observe(
        self,
        ua_key: str,
        known: Optional[bool] = None,
        day: Optional[date] = None,
    ) -> bool:
        """Record one scored session's claimed UA; returns its known-ness.

        ``known`` lets scoring paths that already resolved the verdict
        (``result.known_ua``) skip the set lookup; when omitted the key
        is classified against the current table.
        """
        key = str(ua_key)
        vendor = vendor_of(key)
        with self._lock:
            if known is None:
                known = key in self._known_keys
            self._record_locked(vendor, key, bool(known), day)
        return bool(known)

    def observe_many(
        self, ua_keys: Sequence[str], day: Optional[date] = None
    ) -> int:
        """Bulk feed (cluster transports, gauntlet); returns unknown count."""
        unknown = 0
        with self._lock:
            for ua_key in ua_keys:
                key = str(ua_key)
                known = key in self._known_keys
                if not known:
                    unknown += 1
                self._record_locked(vendor_of(key), key, known, day)
        return unknown

    def _record_locked(
        self, vendor: str, key: str, known: bool, day: Optional[date]
    ) -> None:
        window = self._windows[vendor]
        if len(window) == window.maxlen and window[0]:
            self._window_unknown[vendor] -= 1
        window.append(not known)
        if not known:
            self._window_unknown[vendor] += 1
            self._unknown[vendor] += 1
            self._unknown_keys[key] += 1
        self._observed[vendor] += 1
        if day is not None:
            self._last_day = day

    # -- rates and bands ----------------------------------------------

    def unknown_rate(self, vendor: str) -> float:
        """Windowed unknown-UA rate for one vendor (0.0 when empty)."""
        with self._lock:
            n = len(self._windows[vendor])
            return self._window_unknown[vendor] / n if n else 0.0

    def expected_band(self, vendor: str, day: Optional[date] = None) -> CoverageBand:
        """The calendar-derived expected band for ``vendor`` on ``day``."""
        day = self._resolve_day(day)
        high = self.config.baseline_rate
        adopting = False
        if day is not None and vendor != "other":
            with self._lock:
                known = self._known_keys
                for release in self.calendar.all_releases():
                    if release.vendor.value != vendor:
                        continue
                    age = (day - release.released).days
                    if 0 <= age < self.config.adoption_days and release.key() not in known:
                        adopting = True
                        break
        if adopting:
            high += self.config.adoption_allowance
        return CoverageBand(vendor=vendor, low=0.0, high=high, adopting=adopting)

    def out_of_band(self, vendor: str, day: Optional[date] = None) -> bool:
        """Whether a vendor's unknown rate breached its expected band."""
        with self._lock:
            n = len(self._windows[vendor])
            warmup = min(self.config.min_observations, self.config.window)
            if n < warmup:
                return False
            rate = self._window_unknown[vendor] / n
        band = self.expected_band(vendor, day)
        return rate > band.high

    def _resolve_day(self, day: Optional[date]) -> Optional[date]:
        if day is not None:
            return day
        if self._clock is not None:
            return self._clock()
        return self._last_day

    # -- snapshots -----------------------------------------------------

    def status_dict(self, day: Optional[date] = None) -> Dict:
        """JSON-ready snapshot for ``GET /coverage`` and the CLI."""
        day = self._resolve_day(day)
        vendors = {}
        for vendor in VENDOR_LABELS:
            band = self.expected_band(vendor, day)
            with self._lock:
                n = len(self._windows[vendor])
                window_unknown = self._window_unknown[vendor]
                observed = self._observed[vendor]
                unknown = self._unknown[vendor]
            rate = window_unknown / n if n else 0.0
            warmup = min(self.config.min_observations, self.config.window)
            vendors[vendor] = {
                "observed": observed,
                "unknown": unknown,
                "window_observations": n,
                "window_unknown_rate": rate,
                "band_high": band.high,
                "adopting": band.adopting,
                "out_of_band": n >= warmup and rate > band.high,
            }
        with self._lock:
            top_unknown = [
                {"ua_key": key, "count": count}
                for key, count in self._unknown_keys.most_common(5)
            ]
            known = len(self._known_keys)
            generation = self._generation
        return {
            "day": day.isoformat() if day is not None else None,
            "known_releases": known,
            "model_generation": generation,
            "vendors": vendors,
            "top_unknown": top_unknown,
        }

    def metrics_lines(self, day: Optional[date] = None) -> List[str]:
        """Prometheus-style ``polygraph_coverage_*`` lines."""
        status = self.status_dict(day)
        lines = [
            f"polygraph_coverage_known_releases {status['known_releases']}",
        ]
        if status["model_generation"] is not None:
            lines.append(
                f"polygraph_coverage_generation {status['model_generation']}"
            )
        for vendor in VENDOR_LABELS:
            stats = status["vendors"][vendor]
            label = f'{{vendor="{vendor}"}}'
            lines.append(
                f"polygraph_coverage_observed_total{label} {stats['observed']}"
            )
            lines.append(
                f"polygraph_coverage_unknown_total{label} {stats['unknown']}"
            )
            lines.append(
                f"polygraph_coverage_unknown_rate{label} "
                f"{stats['window_unknown_rate']:.6f}"
            )
            lines.append(
                f"polygraph_coverage_band_high{label} {stats['band_high']:.6f}"
            )
            lines.append(
                f"polygraph_coverage_out_of_band{label} "
                f"{1 if stats['out_of_band'] else 0}"
            )
        return lines
