"""Release-coverage intelligence.

Closes the unknown-UA blind window: the serving model's cluster table is
keyed to known browser releases, so every new release opens a gap where
real traffic (and the adversary's freshest fraud profiles) carries UAs
the table cannot score.  This package watches that gap at serve time
(:class:`~repro.coverage.tracker.CoverageTracker`), distinguishes
release adoption from attack via calendar-derived expected-rate bands,
and plans proactive refreshes
(:class:`~repro.coverage.planner.RefreshPlanner`) so retraining starts
on a release's first day of traffic instead of waiting for the global
flag-rate alarm.
"""

from repro.coverage.planner import RefreshDecision, RefreshPlanner
from repro.coverage.tracker import (
    CoverageBand,
    CoverageConfig,
    CoverageTracker,
    vendor_of,
)

__all__ = [
    "CoverageBand",
    "CoverageConfig",
    "CoverageTracker",
    "RefreshDecision",
    "RefreshPlanner",
    "vendor_of",
]
