"""Proactive refresh planning from coverage signals.

Two triggers, both hours-of-virtual-day ahead of the global flag-rate
alarm that PR 8's gauntlet relied on:

1. **Calendar first-day retrain** — a release ships today (per the
   release calendar) and its key is absent from the serving table, so
   the planner schedules a forced retrain on the release's first day of
   traffic instead of waiting for detection to sag.
2. **Band escalation** — a vendor's windowed unknown-UA rate leaves its
   expected band (adoption windows widen the band, so this fires on
   anomalous unknown volume, not on ordinary rollout spikes).

Decisions are pure functions of (day, calendar, tracker state), so a
seeded gauntlet replay reproduces them bit-identically.  The planner
does not retrain anything itself — callers route a triggering decision
into ``RetrainingOrchestrator.scheduled_check(force=True)`` and report
back via :meth:`note_retrain` so the cooldown can throttle repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Optional, Tuple

from repro.browsers.releases import ReleaseCalendar, default_calendar
from repro.coverage.tracker import VENDOR_LABELS, CoverageTracker

__all__ = ["RefreshDecision", "RefreshPlanner"]


@dataclass(frozen=True)
class RefreshDecision:
    """What the planner wants done on one day."""

    retrain: bool
    force: bool
    reason: Optional[str]
    vendors: Tuple[str, ...]

    @property
    def triggered(self) -> bool:
        return self.retrain


_NO_ACTION = RefreshDecision(retrain=False, force=False, reason=None, vendors=())


class RefreshPlanner:
    """Turns coverage signals into retrain decisions."""

    def __init__(
        self,
        tracker: CoverageTracker,
        calendar: Optional[ReleaseCalendar] = None,
        cooldown_days: int = 3,
    ) -> None:
        if cooldown_days < 0:
            raise ValueError("cooldown_days must be >= 0")
        self.tracker = tracker
        self.calendar = calendar if calendar is not None else default_calendar()
        self.cooldown_days = cooldown_days
        self._last_retrain: Optional[date] = None

    def decide(self, day: date) -> RefreshDecision:
        """The planner's verdict for ``day`` (no side effects)."""
        if (
            self._last_retrain is not None
            and (day - self._last_retrain).days < self.cooldown_days
        ):
            return _NO_ACTION
        shipped = [
            release
            for release in self.calendar.new_releases_between(
                day, day + timedelta(days=1)
            )
            if not self.tracker.is_known(release.key())
        ]
        if shipped:
            keys = ", ".join(release.key() for release in shipped)
            vendors = tuple(
                sorted({release.vendor.value for release in shipped})
            )
            return RefreshDecision(
                retrain=True,
                force=True,
                reason=f"calendar first-day retrain ({keys})",
                vendors=vendors,
            )
        breached = tuple(
            vendor
            for vendor in VENDOR_LABELS
            if self.tracker.out_of_band(vendor, day)
        )
        if breached:
            return RefreshDecision(
                retrain=True,
                force=True,
                reason=f"unknown-rate out of band ({', '.join(breached)})",
                vendors=breached,
            )
        return _NO_ACTION

    def note_retrain(self, day: date) -> None:
        """Record that a retrain was staged on ``day`` (starts cooldown)."""
        self._last_retrain = day
