"""Standard (z-score) feature scaling.

Section 6.4.1 of the paper scales the *deviation-based* attributes with a
StandardScaler because prototype property counts span very different
ranges (a handful of properties on ``StaticRange`` versus hundreds on
``Element``).  Time-based attributes are already binary and may be left
untouched; :class:`StandardScaler` therefore supports an optional column
mask selecting which features to scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Scale features to zero mean and unit variance.

    Parameters
    ----------
    columns:
        Optional sequence of column indices to scale.  Columns outside the
        mask pass through unchanged.  ``None`` (default) scales every
        column.

    Attributes
    ----------
    mean_:
        Per-column means learned by :meth:`fit` (zeros for unscaled
        columns).
    scale_:
        Per-column standard deviations (ones for unscaled columns and for
        constant columns, so transforming never divides by zero).
    """

    def __init__(self, columns: Optional[Sequence[int]] = None) -> None:
        self.columns = None if columns is None else sorted(int(c) for c in columns)
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None

    def fit(self, matrix: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation from ``matrix``."""
        data = _as_2d_float(matrix)
        n_features = data.shape[1]
        if self.columns is not None:
            bad = [c for c in self.columns if c < 0 or c >= n_features]
            if bad:
                raise ValueError(f"scaling columns out of range: {bad}")
        mean = np.zeros(n_features)
        scale = np.ones(n_features)
        selected = slice(None) if self.columns is None else self.columns
        mean[selected] = data[:, selected].mean(axis=0)
        std = data[:, selected].std(axis=0)
        std = np.where(std > 0.0, std, 1.0)
        scale[selected] = std
        self.mean_ = mean
        self.scale_ = scale
        self.n_features_in_ = n_features
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the learned scaling; returns a new float array."""
        self._check_fitted()
        data = _as_2d_float(matrix)
        if data.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {data.shape[1]}"
            )
        return (data - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Equivalent to ``fit(matrix).transform(matrix)``."""
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        self._check_fitted()
        data = _as_2d_float(matrix)
        if data.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected {self.n_features_in_} features, got {data.shape[1]}"
            )
        return data * self.scale_ + self.mean_

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted; call fit() first")


def _as_2d_float(matrix: np.ndarray) -> np.ndarray:
    data = np.asarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    if data.shape[0] == 0:
        raise ValueError("cannot operate on an empty matrix")
    return data
