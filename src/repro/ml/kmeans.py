"""KMeans clustering (k-means++ initialization, Lloyd iterations).

Section 6.4.3 of the paper clusters the PCA-projected coarse-grained
fingerprints with k-means, picking k=11 via the elbow method.  This
implementation is fully vectorized so the 205k-row training matrix of the
paper's deployment clusters in seconds, supports multiple restarts
(``n_init``) with the best inertia kept, and handles empty clusters by
re-seeding them from the points farthest from their centroids.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's k-means with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters (the paper's k; 11 for the deployed model).
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Convergence threshold on the squared centroid movement.
    random_state:
        Seed for reproducible initialization.

    Attributes
    ----------
    cluster_centers_:
        ``(n_clusters, n_features)`` centroid matrix.
    labels_:
        Training-set assignments.
    inertia_:
        Within-cluster sum of squares (WCSS) of the best run — the
        quantity plotted in paper Figures 3 and 4.
    n_iter_:
        Lloyd iterations used by the best run.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 4,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: Optional[int] = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    def fit(self, matrix: np.ndarray) -> "KMeans":
        """Cluster ``matrix``; keeps the best of ``n_init`` restarts."""
        data = np.ascontiguousarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        n_samples = data.shape[0]
        if n_samples < self.n_clusters:
            raise ValueError(
                f"n_samples={n_samples} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)
        sq_norms = np.einsum("ij,ij->i", data, data)

        best_inertia = np.inf
        best: Optional[tuple] = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(data, sq_norms, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best = (centers, labels, inertia, n_iter)
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_, self.n_iter_ = best
        return self

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        """Fit and return the training-set labels."""
        return self.fit(matrix).labels_

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Assign each row of ``matrix`` to its nearest centroid."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[1] != self.cluster_centers_.shape[1]:
            raise ValueError(
                f"expected {self.cluster_centers_.shape[1]} features, "
                f"got {data.shape[1]}"
            )
        sq_norms = np.einsum("ij,ij->i", data, data)
        labels, _ = self._assign(data, sq_norms, self.cluster_centers_)
        return labels

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Distances from each row to every centroid."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        distances_sq = _pairwise_sq_distances(
            data, np.einsum("ij,ij->i", data, data), self.cluster_centers_
        )
        return np.sqrt(np.maximum(distances_sq, 0.0))

    def score(self, matrix: np.ndarray) -> float:
        """Negative WCSS of ``matrix`` under the fitted centroids."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        sq_norms = np.einsum("ij,ij->i", data, data)
        _, inertia = self._assign(data, sq_norms, self.cluster_centers_)
        return -inertia

    # ------------------------------------------------------------------
    # internals

    def _single_run(
        self,
        data: np.ndarray,
        sq_norms: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple:
        centers = self._kmeanspp_init(data, sq_norms, rng)
        labels = np.zeros(data.shape[0], dtype=np.int64)
        inertia = np.inf
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            labels, inertia = self._assign(data, sq_norms, centers)
            new_centers = _recompute_centers(data, labels, self.n_clusters)
            empty = np.nonzero(np.isnan(new_centers[:, 0]))[0]
            if empty.size:
                new_centers = self._reseed_empty(
                    data, sq_norms, new_centers, labels, empty
                )
            shift = float(((new_centers - centers) ** 2).sum())
            centers = new_centers
            if shift <= self.tol:
                break
        labels, inertia = self._assign(data, sq_norms, centers)
        return centers, labels, inertia, n_iter

    def _kmeanspp_init(
        self,
        data: np.ndarray,
        sq_norms: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n_samples = data.shape[0]
        centers = np.empty((self.n_clusters, data.shape[1]))
        first = int(rng.integers(n_samples))
        centers[0] = data[first]
        closest_sq = _sq_distance_to_center(data, sq_norms, centers[0])
        for idx in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 0.0:
                # All remaining points coincide with existing centers.
                pick = int(rng.integers(n_samples))
            else:
                probs = np.maximum(closest_sq, 0.0) / total
                pick = int(rng.choice(n_samples, p=probs))
            centers[idx] = data[pick]
            new_sq = _sq_distance_to_center(data, sq_norms, centers[idx])
            np.minimum(closest_sq, new_sq, out=closest_sq)
        return centers

    def _assign(
        self,
        data: np.ndarray,
        sq_norms: np.ndarray,
        centers: np.ndarray,
    ) -> tuple:
        distances_sq = _pairwise_sq_distances(data, sq_norms, centers)
        labels = distances_sq.argmin(axis=1)
        inertia = float(
            np.maximum(distances_sq[np.arange(data.shape[0]), labels], 0.0).sum()
        )
        return labels, inertia

    def _reseed_empty(
        self,
        data: np.ndarray,
        sq_norms: np.ndarray,
        centers: np.ndarray,
        labels: np.ndarray,
        empty: np.ndarray,
    ) -> np.ndarray:
        # Move each empty centroid onto the point currently farthest from
        # its assigned centroid; this is the standard scikit-learn remedy.
        filled = centers.copy()
        occupied = np.nonzero(~np.isnan(centers[:, 0]))[0]
        distances_sq = _pairwise_sq_distances(data, sq_norms, centers[occupied])
        nearest_sq = distances_sq.min(axis=1)
        order = np.argsort(nearest_sq)[::-1]
        for rank, cluster in enumerate(empty):
            filled[cluster] = data[order[rank % data.shape[0]]]
        return filled

    def _check_fitted(self) -> None:
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")


def _pairwise_sq_distances(
    data: np.ndarray, sq_norms: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    center_sq = np.einsum("ij,ij->i", centers, centers)
    cross = data @ centers.T
    return sq_norms[:, None] - 2.0 * cross + center_sq[None, :]


def _sq_distance_to_center(
    data: np.ndarray, sq_norms: np.ndarray, center: np.ndarray
) -> np.ndarray:
    return np.maximum(
        sq_norms - 2.0 * (data @ center) + float(center @ center), 0.0
    )


def _recompute_centers(
    data: np.ndarray, labels: np.ndarray, n_clusters: int
) -> np.ndarray:
    counts = np.bincount(labels, minlength=n_clusters).astype(float)
    sums = np.zeros((n_clusters, data.shape[1]))
    np.add.at(sums, labels, data)
    with np.errstate(invalid="ignore", divide="ignore"):
        centers = sums / counts[:, None]
    return centers
