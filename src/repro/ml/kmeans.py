"""KMeans clustering (k-means++ initialization, Lloyd iterations).

Section 6.4.3 of the paper clusters the PCA-projected coarse-grained
fingerprints with k-means, picking k=11 via the elbow method.  This
implementation is built for the duplicate-heavy matrices that path sees
(the paper's 205k sessions collapse to 1,313 distinct fingerprints):

* rows are grouped once and Lloyd/k-means++ run *weighted* over the
  distinct rows, so the per-iteration cost scales with the number of
  distinct fingerprints rather than the number of sessions;
* the ``n_init`` restarts are independent tasks with per-restart seeds
  derived from a :class:`numpy.random.SeedSequence`, so they can run on
  a process pool (``jobs``) with results bit-identical to a serial run;
* empty clusters are re-seeded from the points farthest from their
  centroids.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.ml.parallel import parallel_map
from repro.ml.rows import row_groups

__all__ = ["KMeans"]

Seedable = Union[int, np.random.SeedSequence, None]

# Restarts are farmed out to the pool only when a single restart has at
# least this much work (distinct rows x clusters); below it the fork
# and pickling overhead dwarfs the arithmetic.  The gate only chooses
# *where* a restart runs, never what it computes, so model outputs are
# identical either way.  Tests pin it to 0 to force pool execution.
_MIN_PARALLEL_WORK = 1 << 14


def _seed_root(random_state: Seedable) -> np.random.SeedSequence:
    """The root :class:`SeedSequence` all restart seeds spawn from."""
    if isinstance(random_state, np.random.SeedSequence):
        return random_state
    if random_state is None:
        return np.random.SeedSequence()
    return np.random.SeedSequence(int(random_state))


class KMeans:
    """Lloyd's k-means with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters (the paper's k; 11 for the deployed model).
    n_init:
        Independent restarts; the run with the lowest inertia wins
        (ties resolved by restart order, so results are independent of
        ``jobs``).
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Convergence threshold on the squared centroid movement.
    random_state:
        Seed for reproducible initialization.  Accepts an ``int`` or a
        pre-built :class:`numpy.random.SeedSequence` (the elbow sweep
        passes per-k sequences so every (k, restart) pair has its own
        deterministic stream).
    jobs:
        Worker processes for the restarts; 1 runs inline.  Any value
        produces bit-identical models.

    Attributes
    ----------
    cluster_centers_:
        ``(n_clusters, n_features)`` centroid matrix.
    labels_:
        Training-set assignments.
    inertia_:
        Within-cluster sum of squares (WCSS) of the best run — the
        quantity plotted in paper Figures 3 and 4.
    n_iter_:
        Lloyd iterations used by the best run.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 4,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: Seedable = None,
        jobs: int = 1,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.jobs = jobs
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None
        self.n_iter_: Optional[int] = None

    def fit(self, matrix: np.ndarray) -> "KMeans":
        """Cluster ``matrix``; keeps the best of ``n_init`` restarts."""
        data = np.ascontiguousarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        n_samples = data.shape[0]
        if n_samples < self.n_clusters:
            raise ValueError(
                f"n_samples={n_samples} < n_clusters={self.n_clusters}"
            )
        points, sq_norms, weights, inverse = prepare_points(data)
        seeds = _seed_root(self.random_state).spawn(self.n_init)
        tasks = [
            (self.n_clusters, self.max_iter, self.tol, seed) for seed in seeds
        ]
        results = run_restarts(points, sq_norms, weights, tasks, self.jobs)
        centers, inertia, n_iter = pick_best(results)

        group_labels, inertia = _assign_weighted(
            points, sq_norms, weights, centers
        )
        self.cluster_centers_ = centers
        self.labels_ = group_labels[inverse]
        self.inertia_ = inertia
        self.n_iter_ = n_iter
        return self

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        """Fit and return the training-set labels."""
        return self.fit(matrix).labels_

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Assign each row of ``matrix`` to its nearest centroid."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        if data.shape[1] != self.cluster_centers_.shape[1]:
            raise ValueError(
                f"expected {self.cluster_centers_.shape[1]} features, "
                f"got {data.shape[1]}"
            )
        sq_norms = np.einsum("ij,ij->i", data, data)
        labels, _ = _assign_rows(data, sq_norms, self.cluster_centers_)
        return labels

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Distances from each row to every centroid."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        distances_sq = _pairwise_sq_distances(
            data, np.einsum("ij,ij->i", data, data), self.cluster_centers_
        )
        return np.sqrt(np.maximum(distances_sq, 0.0))

    def score(self, matrix: np.ndarray) -> float:
        """Negative WCSS of ``matrix`` under the fitted centroids."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        sq_norms = np.einsum("ij,ij->i", data, data)
        _, inertia = _assign_rows(data, sq_norms, self.cluster_centers_)
        return -inertia

    def _check_fitted(self) -> None:
        if self.cluster_centers_ is None:
            raise RuntimeError("KMeans is not fitted; call fit() first")


# ----------------------------------------------------------------------
# shared training internals (also driven directly by the elbow sweep)


def prepare_points(data: np.ndarray) -> tuple:
    """Collapse ``data`` to weighted distinct rows.

    Returns ``(points, sq_norms, weights, inverse)``; the restart
    payload shared by every (k, restart) task of a sweep — computed
    once in the parent so every worker sees identical inputs.
    """
    first, inverse, counts = row_groups(data)
    points = np.ascontiguousarray(data[first])
    sq_norms = np.einsum("ij,ij->i", points, points)
    return points, sq_norms, counts.astype(float), inverse


def run_restarts(
    points: np.ndarray,
    sq_norms: np.ndarray,
    weights: np.ndarray,
    tasks: List[tuple],
    jobs: int,
) -> List[tuple]:
    """Run ``(n_clusters, max_iter, tol, seed)`` restart tasks.

    Results are ``(centers, inertia, n_iter)`` in task order.  Workers
    never ship labels back — the winner's labels are recomputed by the
    caller with one assignment pass, which is bit-identical and keeps
    the per-task transfer to a ``(k, d)`` centroid block.
    """
    work = points.shape[0] * max((task[0] for task in tasks), default=1)
    effective_jobs = jobs if work >= _MIN_PARALLEL_WORK else 1
    return parallel_map(
        _restart_task,
        tasks,
        jobs=effective_jobs,
        payload=(points, sq_norms, weights),
    )


def pick_best(results: List[tuple]) -> tuple:
    """Lowest-inertia result; ties broken by task order."""
    best = None
    best_inertia = np.inf
    for result in results:
        if result[1] < best_inertia:
            best_inertia = result[1]
            best = result
    assert best is not None
    return best


def _restart_task(payload: tuple, task: tuple) -> tuple:
    """One independent k-means restart (pool worker entry point)."""
    points, sq_norms, weights = payload
    n_clusters, max_iter, tol, seed = task
    rng = np.random.default_rng(seed)
    centers = _kmeanspp_init(points, sq_norms, weights, n_clusters, rng)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        labels, _ = _assign_weighted(points, sq_norms, weights, centers)
        new_centers = _recompute_centers(points, weights, labels, n_clusters)
        empty = np.nonzero(np.isnan(new_centers[:, 0]))[0]
        if empty.size:
            new_centers = _reseed_empty(points, sq_norms, new_centers, empty)
        shift = float(((new_centers - centers) ** 2).sum())
        centers = new_centers
        if shift <= tol:
            break
    _, inertia = _assign_weighted(points, sq_norms, weights, centers)
    return centers, inertia, n_iter


def _kmeanspp_init(
    points: np.ndarray,
    sq_norms: np.ndarray,
    weights: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Weighted k-means++ over distinct rows.

    Sampling a distinct row with probability proportional to its
    multiplicity (times squared distance) is exactly the classic
    row-level k-means++ distribution, at the cost of the distinct rows
    only.
    """
    n_points = points.shape[0]
    uniform = weights / weights.sum()
    centers = np.empty((n_clusters, points.shape[1]))
    first = int(rng.choice(n_points, p=uniform))
    centers[0] = points[first]
    closest_sq = _sq_distance_to_center(points, sq_norms, centers[0])
    for idx in range(1, n_clusters):
        mass = weights * np.maximum(closest_sq, 0.0)
        total = mass.sum()
        if total <= 0.0:
            # All remaining points coincide with existing centers.
            pick = int(rng.choice(n_points, p=uniform))
        else:
            pick = int(rng.choice(n_points, p=mass / total))
        centers[idx] = points[pick]
        new_sq = _sq_distance_to_center(points, sq_norms, centers[idx])
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def _assign_weighted(
    points: np.ndarray,
    sq_norms: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Nearest-centroid labels and multiplicity-weighted inertia."""
    distances_sq = _pairwise_sq_distances(points, sq_norms, centers)
    labels = distances_sq.argmin(axis=1)
    nearest = np.maximum(
        distances_sq[np.arange(points.shape[0]), labels], 0.0
    )
    return labels, float((weights * nearest).sum())


def _assign_rows(
    data: np.ndarray, sq_norms: np.ndarray, centers: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Plain per-row assignment (prediction/scoring path)."""
    distances_sq = _pairwise_sq_distances(data, sq_norms, centers)
    labels = distances_sq.argmin(axis=1)
    inertia = float(
        np.maximum(distances_sq[np.arange(data.shape[0]), labels], 0.0).sum()
    )
    return labels, inertia


def _reseed_empty(
    points: np.ndarray,
    sq_norms: np.ndarray,
    centers: np.ndarray,
    empty: np.ndarray,
) -> np.ndarray:
    # Move each empty centroid onto the point currently farthest from
    # its assigned centroid; this is the standard scikit-learn remedy.
    filled = centers.copy()
    occupied = np.nonzero(~np.isnan(centers[:, 0]))[0]
    distances_sq = _pairwise_sq_distances(points, sq_norms, centers[occupied])
    nearest_sq = distances_sq.min(axis=1)
    order = np.argsort(nearest_sq)[::-1]
    for rank, cluster in enumerate(empty):
        filled[cluster] = points[order[rank % points.shape[0]]]
    return filled


def _pairwise_sq_distances(
    data: np.ndarray, sq_norms: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    center_sq = np.einsum("ij,ij->i", centers, centers)
    cross = data @ centers.T
    return sq_norms[:, None] - 2.0 * cross + center_sq[None, :]


def _sq_distance_to_center(
    data: np.ndarray, sq_norms: np.ndarray, center: np.ndarray
) -> np.ndarray:
    return np.maximum(
        sq_norms - 2.0 * (data @ center) + float(center @ center), 0.0
    )


def _recompute_centers(
    points: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    n_clusters: int,
) -> np.ndarray:
    mass = np.bincount(labels, weights=weights, minlength=n_clusters)
    sums = np.zeros((n_clusters, points.shape[1]))
    np.add.at(sums, labels, points * weights[:, None])
    with np.errstate(invalid="ignore", divide="ignore"):
        centers = sums / mass[:, None]
    return centers
