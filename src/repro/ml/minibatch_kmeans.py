"""Mini-batch k-means (Sculley, 2010).

The paper's Section 8 worries about training cost once the FinOrg
dataset outgrows comfortable batch training.  Stratified sampling
(:mod:`repro.core.sampling`) is one answer; mini-batch k-means is the
other: centroids are updated from small random batches with per-center
learning rates, trading a little inertia for an order of magnitude less
compute — useful for the periodic retraining the drift detector
triggers.

The interface matches :class:`repro.ml.kmeans.KMeans` (fit / predict /
labels_ / inertia_), so it drops into the pipeline unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.kmeans import KMeans, _pairwise_sq_distances

__all__ = ["MiniBatchKMeans"]


class MiniBatchKMeans:
    """Mini-batch variant of Lloyd's algorithm.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    batch_size:
        Rows sampled per update step.
    n_iterations:
        Number of mini-batch steps.
    random_state:
        Seed for batch sampling and initialization.
    """

    def __init__(
        self,
        n_clusters: int,
        batch_size: int = 1024,
        n_iterations: int = 150,
        random_state: Optional[int] = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        self.n_clusters = int(n_clusters)
        self.batch_size = int(batch_size)
        self.n_iterations = int(n_iterations)
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    def fit(self, matrix: np.ndarray) -> "MiniBatchKMeans":
        """Run mini-batch updates, then one full assignment pass."""
        data = np.ascontiguousarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        n_samples = data.shape[0]
        if n_samples < self.n_clusters:
            raise ValueError(
                f"n_samples={n_samples} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)

        # Seed with k-means++ on a subsample (cheap and well-spread).
        seed_size = min(n_samples, max(self.batch_size, 10 * self.n_clusters))
        seed_rows = rng.choice(n_samples, size=seed_size, replace=False)
        seeder = KMeans(
            n_clusters=self.n_clusters, n_init=1, max_iter=1,
            random_state=None if self.random_state is None else self.random_state + 1,
        )
        seeder.fit(data[seed_rows])
        centers = seeder.cluster_centers_.copy()
        counts = np.ones(self.n_clusters)

        batch = min(self.batch_size, n_samples)
        for _ in range(self.n_iterations):
            rows = rng.choice(n_samples, size=batch, replace=False)
            points = data[rows]
            sq_norms = np.einsum("ij,ij->i", points, points)
            assignments = _pairwise_sq_distances(points, sq_norms, centers).argmin(
                axis=1
            )
            for cluster in np.unique(assignments):
                members = points[assignments == cluster]
                counts[cluster] += members.shape[0]
                # Per-center learning rate 1/counts: the standard
                # mini-batch convergence schedule.
                rate = members.shape[0] / counts[cluster]
                centers[cluster] = (1.0 - rate) * centers[cluster] + rate * (
                    members.mean(axis=0)
                )

        self.cluster_centers_ = centers
        sq_norms = np.einsum("ij,ij->i", data, data)
        distances_sq = _pairwise_sq_distances(data, sq_norms, centers)
        self.labels_ = distances_sq.argmin(axis=1)
        self.inertia_ = float(
            np.maximum(
                distances_sq[np.arange(n_samples), self.labels_], 0.0
            ).sum()
        )
        return self

    def fit_predict(self, matrix: np.ndarray) -> np.ndarray:
        """Fit and return training labels."""
        return self.fit(matrix).labels_

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Assign rows to the nearest fitted centroid."""
        if self.cluster_centers_ is None:
            raise RuntimeError("MiniBatchKMeans is not fitted; call fit() first")
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        sq_norms = np.einsum("ij,ij->i", data, data)
        return _pairwise_sq_distances(data, sq_norms, self.cluster_centers_).argmin(
            axis=1
        )
