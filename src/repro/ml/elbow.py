"""Elbow-method utilities for choosing the number of clusters.

Paper Figures 3 and 4 plot the within-cluster sum of squares (WCSS)
against k and the *relative* WCSS improvement, from which the authors
select k=11.  :func:`elbow_analysis` reproduces both series and
:func:`select_k_elbow` applies the paper's rule: pick the k with the most
pronounced relative improvement among the candidate elbows.

The sweep is the dominant cost of a retrain — it fits ``n_init``
restarts for every candidate k — so :func:`elbow_analysis` flattens the
whole (k, restart) grid into independent tasks and runs them through the
shared training worker pool.  Each task's seed is derived solely from
``random_state`` and its (k, restart) coordinates, so the curve is
bit-identical at any ``jobs`` setting and each k's result matches a
standalone ``KMeans(n_clusters=k, random_state=seed_for(k))`` fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.ml import kmeans as _kmeans
from repro.ml.parallel import parallel_map

__all__ = [
    "ElbowResult",
    "elbow_analysis",
    "elbow_seed",
    "relative_wcss_gain",
    "select_k_elbow",
]


@dataclass
class ElbowResult:
    """WCSS curve over a range of k values.

    Attributes
    ----------
    ks:
        The evaluated cluster counts, ascending.
    wcss:
        Best-of-``n_init`` inertia for each k (Figure 3's y-axis).
    relative_gain:
        Relative WCSS improvement per k (Figure 4's y-axis); the first
        entry is 0 by construction.
    """

    ks: List[int]
    wcss: List[float]
    relative_gain: List[float] = field(default_factory=list)

    def as_rows(self) -> List[tuple]:
        """(k, wcss, relative_gain) rows, handy for table rendering."""
        return list(zip(self.ks, self.wcss, self.relative_gain))


def relative_wcss_gain(wcss: Sequence[float]) -> List[float]:
    """Relative improvement ``(wcss[i-1] - wcss[i]) / wcss[i-1]`` per step.

    A spike in this series marks a k beyond which extra clusters stop
    paying for themselves — the paper reads k=11 off this curve.
    """
    values = [float(v) for v in wcss]
    gains = [0.0]
    for prev, curr in zip(values, values[1:]):
        gains.append(0.0 if prev <= 0.0 else (prev - curr) / prev)
    return gains


def elbow_seed(
    random_state: Optional[int], k: int
) -> np.random.SeedSequence:
    """The seed root used for cluster count ``k`` during the sweep.

    Exposed so a final ``KMeans`` fit at the selected k can reproduce
    the sweep's winning model exactly:
    ``KMeans(n_clusters=k, random_state=elbow_seed(rs, k))``.
    """
    entropy = 0 if random_state is None else int(random_state)
    return np.random.SeedSequence(entropy, spawn_key=(int(k),))


def elbow_analysis(
    matrix: np.ndarray,
    ks: Iterable[int],
    n_init: int = 3,
    random_state: Optional[int] = None,
    jobs: int = 1,
    max_iter: int = 300,
    tol: float = 1e-6,
) -> ElbowResult:
    """Fit KMeans for every k and collect the WCSS curve.

    All ``len(ks) * n_init`` restarts run as one flat batch through the
    training worker pool (``jobs``); the row grouping of ``matrix`` is
    computed once and shared by every task.
    """
    ordered = sorted(set(int(k) for k in ks))
    if not ordered:
        raise ValueError("ks must contain at least one cluster count")
    if ordered[0] < 1:
        raise ValueError("cluster counts must be >= 1")
    data = np.ascontiguousarray(matrix, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    n_samples = data.shape[0]
    if ordered[-1] > n_samples:
        raise ValueError(
            f"cannot evaluate k={ordered[-1]}: the matrix has only "
            f"{n_samples} rows; restrict ks to values <= n_samples"
        )
    if n_init < 1:
        raise ValueError("n_init must be >= 1")

    points, sq_norms, weights, _ = _kmeans.prepare_points(data)
    tasks = []
    for k in ordered:
        for seed in elbow_seed(random_state, k).spawn(n_init):
            tasks.append((k, max_iter, tol, seed))
    results = _kmeans.run_restarts(points, sq_norms, weights, tasks, jobs)

    wcss = []
    for idx, _k in enumerate(ordered):
        per_k = results[idx * n_init : (idx + 1) * n_init]
        _, inertia, _ = _kmeans.pick_best(per_k)
        wcss.append(float(inertia))
    return ElbowResult(
        ks=ordered, wcss=wcss, relative_gain=relative_wcss_gain(wcss)
    )


def select_k_elbow(result: ElbowResult, min_k: int = 3) -> int:
    """Pick the elbow k: the most pronounced relative-WCSS *spike*.

    Relative gains normally decay as k grows; a k whose gain jumps above
    its predecessor marks an elbow.  Mirroring the paper's reading of
    Figure 4 (where the pronounced increase at k=11 singles it out among
    the candidate elbows 3, 6 and 11), we return the k >= ``min_k`` with
    the largest increase of relative gain over the preceding k.
    """
    candidates = [
        (k, gain - prev_gain)
        for k, gain, prev_gain in zip(
            result.ks[1:], result.relative_gain[1:], result.relative_gain[:-1]
        )
        if k >= min_k
    ]
    if not candidates:
        raise ValueError(f"no candidate k >= {min_k} in the elbow result")
    best_k, _ = max(candidates, key=lambda item: item[1])
    return int(best_k)
