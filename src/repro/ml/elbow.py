"""Elbow-method utilities for choosing the number of clusters.

Paper Figures 3 and 4 plot the within-cluster sum of squares (WCSS)
against k and the *relative* WCSS improvement, from which the authors
select k=11.  :func:`elbow_analysis` reproduces both series and
:func:`select_k_elbow` applies the paper's rule: pick the k with the most
pronounced relative improvement among the candidate elbows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.ml.kmeans import KMeans

__all__ = ["ElbowResult", "elbow_analysis", "relative_wcss_gain", "select_k_elbow"]


@dataclass
class ElbowResult:
    """WCSS curve over a range of k values.

    Attributes
    ----------
    ks:
        The evaluated cluster counts, ascending.
    wcss:
        Best-of-``n_init`` inertia for each k (Figure 3's y-axis).
    relative_gain:
        Relative WCSS improvement per k (Figure 4's y-axis); the first
        entry is 0 by construction.
    """

    ks: List[int]
    wcss: List[float]
    relative_gain: List[float] = field(default_factory=list)

    def as_rows(self) -> List[tuple]:
        """(k, wcss, relative_gain) rows, handy for table rendering."""
        return list(zip(self.ks, self.wcss, self.relative_gain))


def relative_wcss_gain(wcss: Sequence[float]) -> List[float]:
    """Relative improvement ``(wcss[i-1] - wcss[i]) / wcss[i-1]`` per step.

    A spike in this series marks a k beyond which extra clusters stop
    paying for themselves — the paper reads k=11 off this curve.
    """
    values = [float(v) for v in wcss]
    gains = [0.0]
    for prev, curr in zip(values, values[1:]):
        gains.append(0.0 if prev <= 0.0 else (prev - curr) / prev)
    return gains


def elbow_analysis(
    matrix: np.ndarray,
    ks: Iterable[int],
    n_init: int = 3,
    random_state: Optional[int] = None,
) -> ElbowResult:
    """Fit KMeans for every k and collect the WCSS curve."""
    ordered = sorted(set(int(k) for k in ks))
    if not ordered:
        raise ValueError("ks must contain at least one cluster count")
    if ordered[0] < 1:
        raise ValueError("cluster counts must be >= 1")
    wcss = []
    for idx, k in enumerate(ordered):
        seed = None if random_state is None else random_state + idx
        model = KMeans(n_clusters=k, n_init=n_init, random_state=seed)
        model.fit(matrix)
        wcss.append(float(model.inertia_))
    return ElbowResult(ks=ordered, wcss=wcss, relative_gain=relative_wcss_gain(wcss))


def select_k_elbow(result: ElbowResult, min_k: int = 3) -> int:
    """Pick the elbow k: the most pronounced relative-WCSS *spike*.

    Relative gains normally decay as k grows; a k whose gain jumps above
    its predecessor marks an elbow.  Mirroring the paper's reading of
    Figure 4 (where the pronounced increase at k=11 singles it out among
    the candidate elbows 3, 6 and 11), we return the k >= ``min_k`` with
    the largest increase of relative gain over the preceding k.
    """
    candidates = [
        (k, gain - prev_gain)
        for k, gain, prev_gain in zip(
            result.ks[1:], result.relative_gain[1:], result.relative_gain[:-1]
        )
        if k >= min_k
    ]
    if not candidates:
        raise ValueError(f"no candidate k >= {min_k} in the elbow result")
    best_k, _ = max(candidates, key=lambda item: item[1])
    return int(best_k)
