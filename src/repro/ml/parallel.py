"""Process-based worker pool for the offline training path.

The online path (``repro.runtime``) parallelizes with threads because
scoring batches are short and share one model.  Training is different:
k-means restarts and elbow k-sweeps are minutes-long, CPU-bound, and
embarrassingly parallel, so :func:`parallel_map` fans them out over a
``concurrent.futures`` process pool.

Design constraints, in order:

* **Determinism** — results are returned in task-submission order and
  every task carries its own seed material, so ``jobs=N`` is
  bit-identical to ``jobs=1``.
* **Zero surprises** — ``jobs=1`` (the default everywhere) never
  creates a pool; it runs tasks inline in the caller's process.
* **Graceful degradation** — sandboxes and exotic platforms that cannot
  fork fall back to inline execution instead of failing the retrain.

Large read-only inputs (the training matrix) travel via ``payload``:
under the ``fork`` start method children inherit it through
copy-on-write without any pickling; under ``spawn`` it is pickled once
per worker through the pool initializer, not once per task.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional

__all__ = ["parallel_map", "resolve_jobs"]

# Broadcast payload for the current pool.  Set in the parent before the
# pool forks (inherited for free) and via _init_worker under spawn.
_PAYLOAD: Any = None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``None`` means 1 (inline); negative values mean "all cores".
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        raise ValueError("jobs must be a nonzero integer (or None for inline)")
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _init_worker(payload: Any) -> None:
    global _PAYLOAD
    _PAYLOAD = payload


def _invoke(args: tuple) -> Any:
    fn, item = args
    return fn(_PAYLOAD, item)


def parallel_map(
    fn: Callable[[Any, Any], Any],
    items: Iterable[Any],
    jobs: Optional[int] = 1,
    payload: Any = None,
) -> List[Any]:
    """Apply ``fn(payload, item)`` to every item, possibly in parallel.

    ``fn`` must be a picklable module-level callable and a pure function
    of ``(payload, item)``; results come back in input order regardless
    of worker scheduling, which is what makes parallel runs bit-identical
    to serial ones.  With ``jobs=1`` (or a single item) everything runs
    inline and no pool is created.
    """
    tasks = list(items)
    n_workers = min(resolve_jobs(jobs), len(tasks))
    if n_workers <= 1:
        return [fn(payload, item) for item in tasks]

    global _PAYLOAD
    prior = _PAYLOAD
    _PAYLOAD = payload  # inherited by forked children without pickling
    try:
        if multiprocessing.get_start_method() == "fork":
            initializer, initargs = None, ()
        else:  # spawn/forkserver: ship the payload once per worker
            initializer, initargs = _init_worker, (payload,)
        try:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                return list(pool.map(_invoke, [(fn, item) for item in tasks]))
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            # Sandboxed environments may forbid fork or the semaphores the
            # pool needs.  Tasks are pure, so rerunning inline is safe.
            warnings.warn(
                f"process pool unavailable ({exc!r}); running {len(tasks)} "
                "training tasks inline",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(payload, item) for item in tasks]
    finally:
        _PAYLOAD = prior
