"""Isolation Forest anomaly detection (Liu, Ting & Zhou, 2008).

Section 6.4.1 of the paper removes outliers from the 205k-row FinOrg
training matrix with an Isolation Forest at a 0.002% contamination-style
threshold (172 rows dropped).  This implementation follows the original
algorithm: each tree is built on a small random subsample with uniformly
random split features/values, anomaly scores derive from average path
lengths, and scoring is vectorized so the full training matrix scores in
well under a second.

Trees are stored as flat arrays (feature, threshold, children, leaf size)
rather than Python node objects, which keeps construction cheap and lets
:meth:`IsolationForest.score_samples` walk all points through a tree one
depth level at a time with numpy indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ml.rows import row_groups

__all__ = ["IsolationForest"]

_EULER_GAMMA = 0.5772156649015329

# Deduplicated scoring only pays for itself on large batches where the
# grouping pass is cheaper than the avoided tree walks.
_DEDUP_MIN_ROWS = 2048


def average_path_length(n: np.ndarray) -> np.ndarray:
    """Expected path length ``c(n)`` of an unsuccessful BST search.

    Used both to normalize scores and to account for unsplit leaves.
    """
    n = np.asarray(n, dtype=float)
    result = np.zeros_like(n)
    big = n > 2.0
    result[big] = 2.0 * (np.log(n[big] - 1.0) + _EULER_GAMMA) - 2.0 * (
        n[big] - 1.0
    ) / n[big]
    result[n == 2.0] = 1.0
    return result


@dataclass
class _IsolationTree:
    """One isolation tree in structure-of-arrays form."""

    feature: np.ndarray  # split feature per node; -1 marks a leaf
    threshold: np.ndarray  # split value per node
    left: np.ndarray  # left child index
    right: np.ndarray  # right child index
    depth: np.ndarray  # node depth (root = 0)
    leaf_size: np.ndarray  # number of training samples in a leaf

    def path_lengths(self, data: np.ndarray) -> np.ndarray:
        """Path length of every row of ``data`` through this tree."""
        node = np.zeros(data.shape[0], dtype=np.int64)
        active = self.feature[node] >= 0
        while np.any(active):
            idx = np.nonzero(active)[0]
            current = node[idx]
            go_left = (
                data[idx, self.feature[current]] < self.threshold[current]
            )
            node[idx] = np.where(
                go_left, self.left[current], self.right[current]
            )
            active[idx] = self.feature[node[idx]] >= 0
        return self.depth[node] + average_path_length(self.leaf_size[node])


class IsolationForest:
    """Ensemble of isolation trees producing per-sample anomaly scores.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_samples:
        Subsample size per tree (clamped to the dataset size).
    contamination:
        Fraction of the training data treated as outliers; the paper uses
        0.002% = 2e-5.  Determines ``threshold_`` after :meth:`fit`.
    random_state:
        Seed for reproducibility.

    Scores follow the original paper's convention: values near 1 indicate
    anomalies, values well below 0.5 indicate normal points.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 256,
        contamination: float = 2e-5,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must lie in (0, 0.5)")
        self.n_estimators = int(n_estimators)
        self.max_samples = int(max_samples)
        self.contamination = float(contamination)
        self.random_state = random_state
        self.trees_: List[_IsolationTree] = []
        self.subsample_size_: Optional[int] = None
        self.threshold_: Optional[float] = None
        self.fit_inlier_mask_: Optional[np.ndarray] = None
        self.fit_outlier_indices_: Optional[np.ndarray] = None
        self.fit_scores_: Optional[np.ndarray] = None

    def fit(self, matrix: np.ndarray) -> "IsolationForest":
        """Build the forest on ``matrix`` and calibrate ``threshold_``."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        n_samples = data.shape[0]
        if n_samples < 2:
            raise ValueError("IsolationForest requires at least two samples")
        rng = np.random.default_rng(self.random_state)
        subsample = min(self.max_samples, n_samples)
        height_limit = int(np.ceil(np.log2(subsample)))

        self.subsample_size_ = subsample
        self.trees_ = []
        for _ in range(self.n_estimators):
            picks = rng.choice(n_samples, size=subsample, replace=False)
            self.trees_.append(
                _build_tree(data[picks], height_limit, rng)
            )

        scores = self.score_samples(data)
        self.fit_scores_ = scores
        # The top `contamination` fraction of scores are outliers.  With
        # the paper's 2e-5 threshold on 205k rows this keeps the handful
        # of most isolated fingerprints.  Ties are resolved by capping
        # the training outlier set at exactly n_outliers rows — web
        # traffic is full of duplicate fingerprints, and letting a tied
        # score sweep a whole duplicate group out would discard
        # legitimate (if rare) browser populations.
        n_outliers = max(1, int(round(self.contamination * n_samples)))
        order = np.argsort(scores)
        outlier_rows = order[-n_outliers:]
        self.threshold_ = float(scores[outlier_rows[0]])
        self.fit_outlier_indices_ = np.sort(outlier_rows)
        mask = np.ones(n_samples, dtype=bool)
        mask[outlier_rows] = False
        self.fit_inlier_mask_ = mask
        return self

    def score_samples(self, matrix: np.ndarray) -> np.ndarray:
        """Anomaly score in (0, 1) for every row (higher = more anomalous).

        A row's score is a pure function of its values, so duplicate
        rows — the overwhelming majority in coarse-grained fingerprint
        matrices — are scored once and broadcast back.  The output is
        bit-identical to scoring every row individually.
        """
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        if data.ndim == 1:
            data = data[None, :]
        n_rows = data.shape[0]
        if n_rows >= _DEDUP_MIN_ROWS:
            first, inverse, _ = row_groups(data)
            if first.size * 2 <= n_rows:
                return self._score_rows(data[first])[inverse]
        return self._score_rows(data)

    def _score_rows(self, data: np.ndarray) -> np.ndarray:
        lengths = np.zeros(data.shape[0])
        for tree in self.trees_:
            lengths += tree.path_lengths(data)
        mean_length = lengths / len(self.trees_)
        normalizer = float(average_path_length(np.array([self.subsample_size_]))[0])
        if normalizer <= 0.0:
            normalizer = 1.0
        return np.power(2.0, -mean_length / normalizer)

    def predict(self, matrix: np.ndarray) -> np.ndarray:
        """Return +1 for inliers and -1 for outliers."""
        self._check_fitted()
        if self.threshold_ is None:
            raise RuntimeError("threshold_ missing; fit() must calibrate it")
        scores = self.score_samples(matrix)
        return np.where(scores >= self.threshold_, -1, 1)

    def inlier_mask(self, matrix: np.ndarray) -> np.ndarray:
        """Boolean mask selecting the rows kept after outlier removal."""
        return self.predict(matrix) == 1

    def _check_fitted(self) -> None:
        if not self.trees_:
            raise RuntimeError("IsolationForest is not fitted; call fit() first")


def _build_tree(
    sample: np.ndarray, height_limit: int, rng: np.random.Generator
) -> _IsolationTree:
    """Grow one isolation tree over ``sample`` up to ``height_limit``."""
    feature: List[int] = []
    threshold: List[float] = []
    left: List[int] = []
    right: List[int] = []
    depth: List[int] = []
    leaf_size: List[int] = []

    # Stack of (row-index-array, depth, slot-in-parent or None-for-root).
    stack = [(np.arange(sample.shape[0]), 0, -1, False)]
    while stack:
        rows, level, parent, is_right = stack.pop()
        node_id = len(feature)
        if parent >= 0:
            if is_right:
                right[parent] = node_id
            else:
                left[parent] = node_id

        split = _choose_split(sample, rows, rng) if (
            level < height_limit and rows.size > 1
        ) else None
        if split is None:
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            depth.append(level)
            leaf_size.append(int(rows.size))
            continue

        split_feature, split_value, go_left = split
        feature.append(split_feature)
        threshold.append(split_value)
        left.append(-1)
        right.append(-1)
        depth.append(level)
        leaf_size.append(0)
        stack.append((rows[~go_left], level + 1, node_id, True))
        stack.append((rows[go_left], level + 1, node_id, False))

    return _IsolationTree(
        feature=np.asarray(feature, dtype=np.int64),
        threshold=np.asarray(threshold, dtype=float),
        left=np.asarray(left, dtype=np.int64),
        right=np.asarray(right, dtype=np.int64),
        depth=np.asarray(depth, dtype=float),
        leaf_size=np.asarray(leaf_size, dtype=float),
    )


def _choose_split(
    sample: np.ndarray, rows: np.ndarray, rng: np.random.Generator
) -> Optional[tuple]:
    """Pick a uniformly random (feature, value) split that separates rows.

    Returns ``None`` when every candidate feature is constant on ``rows``
    (the node becomes a leaf).
    """
    candidates = rng.permutation(sample.shape[1])
    for split_feature in candidates:
        values = sample[rows, split_feature]
        low = values.min()
        high = values.max()
        if high <= low:
            continue
        split_value = float(rng.uniform(low, high))
        go_left = values < split_value
        if go_left.any() and not go_left.all():
            return int(split_feature), split_value, go_left
    return None
