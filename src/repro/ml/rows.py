"""Grouping of identical matrix rows.

Coarse-grained fingerprints are extremely duplicate-heavy: the paper's
205k-session training window contains only 1,313 distinct fingerprints.
Every per-row computation that is a pure function of the row's values
(Isolation Forest scoring, k-means assignment) can therefore run once
per *distinct* row and be broadcast back, with bit-identical results.

:func:`row_groups` computes that grouping with per-column factorization
(one 1-D ``np.unique`` per column) instead of ``np.unique(axis=0)``,
which avoids lexicographic sorting of wide row keys and is several
times faster on the matrices the training path sees.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["row_groups"]

# Composite codes are compressed back to dense ranks before they can
# overflow an int64 (values stay below _CODE_LIMIT * n_distinct_column).
_CODE_LIMIT = np.int64(1) << 40


def row_groups(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group identical rows of a 2-D array.

    Returns ``(first, inverse, counts)`` where ``first`` holds the index
    of the first occurrence of each distinct row, ``inverse`` maps every
    row to its group, and ``counts`` is the group multiplicity — so
    ``matrix[first][inverse]`` reconstructs ``matrix`` row for row.
    Groups are ordered lexicographically by row content (ascending per
    column), matching ``np.unique(matrix, axis=0)``; the result is fully
    deterministic.
    """
    data = np.asarray(matrix)
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    n = data.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()

    codes = np.zeros(n, dtype=np.int64)
    for col in range(data.shape[1]):
        values, col_codes = np.unique(data[:, col], return_inverse=True)
        if values.size == 1:
            continue
        if codes.max(initial=0) >= _CODE_LIMIT // values.size:
            _, codes = np.unique(codes, return_inverse=True)
            codes = codes.astype(np.int64)
        codes = codes * np.int64(values.size) + col_codes.astype(np.int64)

    _, first, inverse, counts = np.unique(
        codes, return_index=True, return_inverse=True, return_counts=True
    )
    return (
        first.astype(np.int64),
        inverse.astype(np.int64),
        counts.astype(np.int64),
    )
