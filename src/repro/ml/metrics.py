"""Clustering, entropy, and anonymity metrics.

Three families of measurements from the paper live here:

* **Majority-cluster accuracy** (Appendix-4, Formula 1) — the fraction of
  sessions assigned to the majority cluster of their user-agent string;
  the paper's headline 99.6% figure.
* **Shannon / normalized entropy** of individual features (Table 7).
* **Anonymity-set sizes** of whole fingerprints (Figure 5).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "anonymity_set_sizes",
    "anonymity_survey",
    "majority_cluster_accuracy",
    "majority_cluster_map",
    "normalized_shannon_entropy",
    "shannon_entropy",
    "silhouette_samples_mean",
]


def majority_cluster_map(
    labels: Sequence[Hashable], clusters: Sequence[int]
) -> Dict[Hashable, int]:
    """Map each label (user-agent) to the cluster holding most of its rows.

    Ties break toward the smaller cluster id so the mapping is
    deterministic.
    """
    if len(labels) != len(clusters):
        raise ValueError("labels and clusters must have equal length")
    per_label: Dict[Hashable, Counter] = defaultdict(Counter)
    for label, cluster in zip(labels, clusters):
        per_label[label][int(cluster)] += 1
    mapping = {}
    for label, counts in per_label.items():
        best = max(counts.items(), key=lambda item: (item[1], -item[0]))
        mapping[label] = best[0]
    return mapping


def majority_cluster_accuracy(
    labels: Sequence[Hashable], clusters: Sequence[int]
) -> float:
    """Fraction of rows landing in their label's majority cluster.

    This is the paper's Formula 1 accuracy: a row is "correctly
    clustered" iff it sits in the cluster that holds the majority of the
    rows sharing its user-agent.
    """
    if not len(labels):
        raise ValueError("cannot compute accuracy on empty input")
    mapping = majority_cluster_map(labels, clusters)
    correct = sum(
        1 for label, cluster in zip(labels, clusters) if mapping[label] == int(cluster)
    )
    return correct / len(labels)


def shannon_entropy(values: Sequence[Hashable]) -> float:
    """Shannon entropy (bits) of the empirical distribution of ``values``."""
    if not len(values):
        raise ValueError("cannot compute entropy of an empty sequence")
    counts = np.asarray(list(Counter(values).values()), dtype=float)
    probs = counts / counts.sum()
    return float(-(probs * np.log2(probs)).sum())


def normalized_shannon_entropy(values: Sequence[Hashable], total: int = 0) -> float:
    """Entropy divided by ``log2(total)``.

    ``total`` defaults to the number of observations, matching the
    AmIUnique convention the paper compares against (normalized entropy
    of 0.58 for the user-agent).
    """
    n = total or len(values)
    if n < 2:
        return 0.0
    return shannon_entropy(values) / float(np.log2(n))


def anonymity_set_sizes(fingerprints: Sequence[Tuple]) -> List[int]:
    """Size of the anonymity set each fingerprint belongs to.

    The anonymity set of a fingerprint is the group of observations that
    share exactly the same fingerprint; users inside large sets cannot be
    told apart.
    """
    counts = Counter(fingerprints)
    return [counts[fp] for fp in fingerprints]


def anonymity_survey(
    fingerprints: Sequence[Tuple],
    buckets: Sequence[Tuple[int, int]] = (
        (1, 1),
        (2, 10),
        (11, 50),
        (51, 500),
        (501, 10**9),
    ),
) -> Dict[str, float]:
    """Percentage of fingerprints per anonymity-set-size bucket (Figure 5).

    Buckets are inclusive ``(low, high)`` ranges; the default mirrors the
    granularity the paper reports (unique, small, medium, >50, >500).
    """
    if not fingerprints:
        raise ValueError("cannot survey an empty fingerprint collection")
    sizes = anonymity_set_sizes(fingerprints)
    total = len(sizes)
    survey = {}
    for low, high in buckets:
        share = sum(1 for s in sizes if low <= s <= high) / total
        label = f"{low}" if low == high else f"{low}-{high if high < 10**9 else '+'}"
        survey[label] = 100.0 * share
    return survey


def silhouette_samples_mean(
    matrix: np.ndarray, clusters: Sequence[int], sample_size: int = 2000, seed: int = 0
) -> float:
    """Mean silhouette coefficient on a random subsample.

    Not used by the paper directly but a useful internal sanity check
    that the k=11 clustering is well separated.  Subsampling keeps the
    O(n^2) pairwise distances affordable on 205k rows.
    """
    data = np.asarray(matrix, dtype=float)
    labels = np.asarray(clusters, dtype=np.int64)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("matrix and clusters must align")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette requires at least two clusters")
    rng = np.random.default_rng(seed)
    if data.shape[0] > sample_size:
        picks = rng.choice(data.shape[0], size=sample_size, replace=False)
        data = data[picks]
        labels = labels[picks]
        unique = np.unique(labels)
        if unique.size < 2:
            raise ValueError("subsample collapsed to a single cluster; raise sample_size")

    sq = np.einsum("ij,ij->i", data, data)
    distances = np.sqrt(
        np.maximum(sq[:, None] - 2.0 * (data @ data.T) + sq[None, :], 0.0)
    )
    scores = np.zeros(data.shape[0])
    for idx in range(data.shape[0]):
        own = labels == labels[idx]
        own_count = own.sum() - 1
        if own_count <= 0:
            scores[idx] = 0.0
            continue
        a = distances[idx, own].sum() / own_count
        b = min(
            distances[idx, labels == other].mean()
            for other in unique
            if other != labels[idx]
        )
        denom = max(a, b)
        scores[idx] = 0.0 if denom == 0.0 else (b - a) / denom
    return float(scores.mean())
