"""Machine-learning substrate for Browser Polygraph.

The paper's pipeline relies on a handful of standard algorithms
(StandardScaler, PCA, KMeans, Isolation Forest) plus clustering metrics.
This subpackage implements all of them from scratch on numpy so the
reproduction has no dependency on scikit-learn.

All estimators follow the familiar ``fit`` / ``transform`` / ``predict``
protocol and accept an explicit ``random_state`` so every experiment in
the repository is deterministic.
"""

from repro.ml.elbow import (
    ElbowResult,
    elbow_analysis,
    elbow_seed,
    relative_wcss_gain,
    select_k_elbow,
)
from repro.ml.isolation_forest import IsolationForest
from repro.ml.kmeans import KMeans
from repro.ml.minibatch_kmeans import MiniBatchKMeans
from repro.ml.parallel import parallel_map, resolve_jobs
from repro.ml.rows import row_groups
from repro.ml.metrics import (
    anonymity_set_sizes,
    anonymity_survey,
    majority_cluster_accuracy,
    majority_cluster_map,
    normalized_shannon_entropy,
    shannon_entropy,
    silhouette_samples_mean,
)
from repro.ml.pca import PCA
from repro.ml.scaler import StandardScaler

__all__ = [
    "ElbowResult",
    "IsolationForest",
    "KMeans",
    "MiniBatchKMeans",
    "PCA",
    "StandardScaler",
    "anonymity_set_sizes",
    "anonymity_survey",
    "elbow_analysis",
    "elbow_seed",
    "majority_cluster_accuracy",
    "majority_cluster_map",
    "normalized_shannon_entropy",
    "parallel_map",
    "relative_wcss_gain",
    "resolve_jobs",
    "row_groups",
    "select_k_elbow",
    "shannon_entropy",
    "silhouette_samples_mean",
]
