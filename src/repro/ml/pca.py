"""Principal Component Analysis via singular value decomposition.

Section 6.4.2 of the paper uses PCA to project the 28 coarse-grained
features onto 7 components that retain >98.5% of the variance
(paper Figure 2).  This implementation mirrors the conventional
scikit-learn semantics: data is centered (not re-scaled), components are
the right singular vectors, and ``explained_variance_ratio_`` reports the
fraction of total variance captured per component.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Linear dimensionality reduction using SVD.

    Parameters
    ----------
    n_components:
        Number of principal components to keep.  ``None`` keeps
        ``min(n_samples, n_features)`` components.

    Attributes
    ----------
    components_:
        Array of shape ``(n_components, n_features)``; rows are principal
        axes sorted by explained variance.
    explained_variance_:
        Variance captured by each component.
    explained_variance_ratio_:
        ``explained_variance_`` normalized by the total variance.
    mean_:
        Per-feature empirical mean removed before projection.
    """

    def __init__(self, n_components: Optional[int] = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be a positive integer")
        self.n_components = n_components
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None
        self.singular_values_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None

    def fit(self, matrix: np.ndarray) -> "PCA":
        """Learn the principal axes of ``matrix``."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
        n_samples, n_features = data.shape
        if n_samples < 2:
            raise ValueError("PCA requires at least two samples")
        max_components = min(n_samples, n_features)
        n_components = self.n_components or max_components
        if n_components > max_components:
            raise ValueError(
                f"n_components={n_components} exceeds min(n_samples, n_features)"
                f"={max_components}"
            )

        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        # Full SVD of the centered data: centered = U @ diag(S) @ Vt.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        explained_variance = (singular_values**2) / (n_samples - 1)
        total_variance = explained_variance.sum()
        if total_variance <= 0.0:
            ratio = np.zeros_like(explained_variance)
        else:
            ratio = explained_variance / total_variance

        # Deterministic sign convention: make the largest-magnitude entry
        # of each component positive so repeated fits agree exactly.
        signs = np.sign(vt[np.arange(vt.shape[0]), np.abs(vt).argmax(axis=1)])
        signs[signs == 0] = 1.0
        vt = vt * signs[:, None]

        self.components_ = vt[:n_components]
        self.explained_variance_ = explained_variance[:n_components]
        self.explained_variance_ratio_ = ratio[:n_components]
        self.singular_values_ = singular_values[:n_components]
        self.n_features_in_ = n_features
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Project ``matrix`` onto the learned principal axes."""
        self._check_fitted()
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected shape (n, {self.n_features_in_}), got {data.shape}"
            )
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Equivalent to ``fit(matrix).transform(matrix)``."""
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map points from component space back to feature space."""
        self._check_fitted()
        data = np.asarray(projected, dtype=float)
        if data.ndim != 2 or data.shape[1] != self.components_.shape[0]:
            raise ValueError(
                f"expected shape (n, {self.components_.shape[0]}), got {data.shape}"
            )
        return data @ self.components_ + self.mean_

    def cumulative_variance_ratio(self) -> np.ndarray:
        """Cumulative explained-variance curve (paper Figure 2)."""
        self._check_fitted()
        return np.cumsum(self.explained_variance_ratio_)

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted; call fit() first")


def components_for_variance(matrix: np.ndarray, target_ratio: float) -> int:
    """Smallest number of components whose cumulative variance reaches
    ``target_ratio`` (used to pick 7 components at the 98.5% mark)."""
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError("target_ratio must lie in (0, 1]")
    pca = PCA().fit(matrix)
    cumulative = pca.cumulative_variance_ratio()
    hits = np.nonzero(cumulative >= target_ratio - 1e-12)[0]
    if hits.size == 0:
        return int(cumulative.size)
    return int(hits[0]) + 1
