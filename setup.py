"""Legacy setup shim: lets `pip install -e .` work without the wheel package.

Also declares the console script explicitly, because older setuptools
releases do not read ``[project.scripts]`` from pyproject.toml.
"""
from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "browser-polygraph = repro.cli:main",
        ]
    }
)
